"""Vectorised scan kernels: the wavefront algorithm.

The paper's scanner is a doubly-nested loop whose inner iteration count
is only O(n^{3/2}) thanks to the chain-cover skip -- but every one of
those iterations is interpreted Python in the reference backend.  This
module batches them.

**The wavefront.**  Fix the pruning bound ``B``.  Then every start
position's walk over its end positions is *independent*: the skip root
at ``(i, e)`` depends only on the prefix counts and ``B``.  So the scan
is run as a set of *lanes* -- one lane per start position -- advanced in
lockstep: one numpy "step" gathers the prefix counts at every lane's
current end position, evaluates all their X² values, their skip roots
and their jumps in a handful of array operations, and retires lanes that
run off the end of the string.  The number of steps is the *maximum*
number of evaluations any lane needs, while the interpreted backend pays
for the *sum*.

**Exactness.**  The bound is only fixed until some evaluation beats it
(Algorithm 1 line 8).  Such a position can never be jumped over -- the
chain-cover argument only ever skips positions whose X² is at most the
current bound -- so a two-pass scheme recovers the exact sequential
semantics:

1. *Discovery pass*: run all lanes of a block of start positions with
   the bound frozen at its block-entry value, recording every visit that
   exceeds it (a superset of the true bound updates, each of which is
   provably visited).
2. If nothing exceeded, the discovery pass *was* the exact scan: commit
   its counters.  Otherwise replay the block: a scan-order simulation of
   the recorded exceedances pins down exactly which rows update the
   bound; those few rows are walked by the scalar reference row walkers
   (:mod:`repro.kernels.python_backend`), and the runs of rows between
   them -- whose bounds are now known constants -- are re-run as exact
   wavefronts.

Because bound updates cluster in the earliest (shortest) start
positions, the first :data:`_HEAD_ROWS` rows are walked scalar to let
the bound ramp up, and block sizes double from :data:`_FIRST_BLOCK` so a
late update never forces a large replay.

Every arithmetic expression below is written in the same evaluation
order as the scalar walkers, and numpy's float64 element operations are
IEEE-754-identical to CPython's -- so the two backends agree *bitwise*
on scores, intervals, evaluation and skip counters (asserted by
``tests/kernels/test_backend_parity.py``).

Skip accounting needs no per-lane bookkeeping: a lane entering at
``e0`` always leaves at ``n + 1``, and every evaluation advances it by
``1 + jump``, so ``skipped = (n + 1 - e0) - evaluated`` summed over
lanes -- the identity the commit paths use.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import math
import os

import numpy as np

from repro.generators.base import resolve_rng
from repro.kernels.python_backend import (
    _EPS,
    PythonBackend,
    mss_row_binary,
    mss_row_generic,
    threshold_row,
    topt_row,
)

__all__ = ["NumpyBackend"]

#: Environment variable selecting how many worker processes the numpy
#: backend's Monte-Carlo calibration fans its trial chunks over.  Unset
#: or ``1`` keeps the simulation in-process; ``auto`` uses every core.
#: Samples are bit-identical at any worker count (chunks are drawn from
#: the RNG stream up front, in order, and only the scans parallelise).
CALIB_WORKERS_ENV = "REPRO_CALIB_WORKERS"

#: Rows walked by the scalar reference before vectorising: the pruning
#: bound does most of its climbing in the first (shortest) rows, and a
#: scalar head keeps those bound updates out of the replay machinery.
_HEAD_ROWS = 64

#: First vectorised block size; blocks double from here so early bound
#: updates replay only small blocks while the bulk of the string is
#: covered by a few large, cheap passes.
_FIRST_BLOCK = 64

#: First block size for the Monte-Carlo kernel (smaller: per-trial
#: bounds ramp inside the blocked sweep itself, there is no scalar head).
_CALIB_FIRST_BLOCK = 16

#: Replay gaps at most this many rows go through the scalar row walkers:
#: a wavefront pass has a per-step overhead that only pays off once
#: enough lanes advance together.
_SCALAR_GAP = 48

#: Element budget (k * (n + 1) * trials) per calibration chunk, bounding
#: the stacked prefix matrices to ~64 MB.
_CALIB_CHUNK_ELEMS = 8 * 2**20

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def _lane_pass_binary(pref1, n, i_arr, e_arr, off, bound, p0, p1,
                      *, collect, lane_tag=None, eval_by_tag=None):
    """Advance binary-MSS lanes to completion under a frozen bound.

    ``pref1`` is the flat ``int64`` prefix-count array of symbol 1 --
    ``(n + 1,)`` for a single string (``off is None``) or the
    concatenation of ``T`` such arrays with ``off`` holding each lane's
    base offset.  ``n`` is the string length -- a scalar, or a per-lane
    ``int64`` array when lanes span ragged documents (``mine_batch``).
    ``bound`` is a float or a per-lane float64 array.

    With ``collect`` the pass records every visit whose X² exceeds the
    bound (using ``max(bound, x2)`` -- a legal chain-cover bound -- for
    that visit's own skip); without it the caller guarantees no visit
    exceeds, making the pass an exact replay.

    ``eval_by_tag``, when given alongside ``lane_tag``, is an ``int64``
    array accumulating each tag's evaluation count in place -- how the
    batched corpus sweep splits the lane identity per document.

    Returns ``(evaluated, cand_i, cand_e, cand_x, cand_tag)``.
    """
    inv_lp = 1.0 / (p0 * p1)
    two_p0 = 2.0 * p0
    two_p1 = 2.0 * p1
    bound_is_array = isinstance(bound, np.ndarray)
    n_is_array = isinstance(n, np.ndarray)
    base = pref1[i_arr if off is None else off + i_arr]
    cand_i: list[np.ndarray] = []
    cand_e: list[np.ndarray] = []
    cand_x: list[np.ndarray] = []
    cand_t: list[np.ndarray] = []
    evaluated = 0
    while e_arr.size:
        L = e_arr - i_arr
        y1 = pref1[e_arr if off is None else off + e_arr] - base
        d = y1 - L * p1
        x2 = (d * d) * inv_lp / L
        evaluated += e_arr.size
        if eval_by_tag is not None:
            eval_by_tag += np.bincount(lane_tag, minlength=eval_by_tag.size)
        if collect:
            exceed = x2 > bound
            if exceed.any():
                idx = np.nonzero(exceed)[0]
                cand_i.append(i_arr[idx])
                cand_e.append(e_arr[idx])
                cand_x.append(x2[idx])
                if lane_tag is not None:
                    cand_t.append(lane_tag[idx])
                # Tighten each lane's own bound: a lane's past
                # exceedances precede its current position in scan
                # order, so they lower-bound the true pruning bound
                # there -- skips stay conservative, visits shrink.
                bound = np.maximum(bound, x2)
                bound_is_array = True
        beff = bound
        c_common = (x2 - beff) * L
        y0 = L - y1
        b0 = 2.0 * y0 - L * two_p0 - p0 * beff
        c0 = c_common * p0
        r0 = (-b0 + np.sqrt(b0 * b0 - 4.0 * p1 * c0)) / (2.0 * p1)
        b1 = 2.0 * y1 - L * two_p1 - p1 * beff
        c1 = c_common * p1
        r1 = (-b1 + np.sqrt(b1 * b1 - 4.0 * p0 * c1)) / (2.0 * p0)
        root = np.minimum(r0, r1)
        jump = np.where(root >= 1.0, root - _EPS, 0.0).astype(np.int64)
        np.minimum(jump, n - e_arr, out=jump)
        e_arr = e_arr + jump + 1
        alive = e_arr <= n
        if not alive.all():
            e_arr = e_arr[alive]
            i_arr = i_arr[alive]
            base = base[alive]
            if off is not None:
                off = off[alive]
            if bound_is_array:
                bound = bound[alive]
            if n_is_array:
                n = n[alive]
            if lane_tag is not None:
                lane_tag = lane_tag[alive]
    return (
        evaluated,
        np.concatenate(cand_i) if cand_i else _EMPTY_I,
        np.concatenate(cand_e) if cand_e else _EMPTY_I,
        np.concatenate(cand_x) if cand_x else _EMPTY_F,
        np.concatenate(cand_t) if cand_t else _EMPTY_I,
    )


def _lane_pass_generic(mat, n, i_arr, e_arr, off, bound, probabilities,
                       *, collect, exceed_unit=False, store=True,
                       lane_tag=None, eval_by_tag=None):
    """Advance generic-alphabet lanes to completion under a frozen bound.

    ``mat`` is the ``(k, m)`` flat prefix matrix (``m = n + 1`` for a
    single string; ragged documents concatenate their matrices and pass
    per-lane ``off`` base offsets and a per-lane ``n`` array).
    ``exceed_unit`` selects the threshold semantics at
    exceeding visits -- advance one position, no skip -- instead of the
    discovery semantics (skip with the visit's own X² as bound);
    ``store=False`` counts exceedances without materialising them
    (``count_only`` threshold scans).  ``eval_by_tag`` (with
    ``lane_tag``) accumulates per-tag evaluation counts in place.

    Returns ``(evaluated, exceed_count, cand_i, cand_e, cand_x, cand_tag)``.
    """
    k = len(probabilities)
    p_col = np.asarray(probabilities, dtype=np.float64)[:, None]
    a_col = 1.0 - p_col
    four_a = 4.0 * a_col
    two_a = 2.0 * a_col
    inv_p = [1.0 / p for p in probabilities]
    bound_is_array = isinstance(bound, np.ndarray)
    n_is_array = isinstance(n, np.ndarray)
    bases = mat[:, i_arr if off is None else off + i_arr]
    cand_i: list[np.ndarray] = []
    cand_e: list[np.ndarray] = []
    cand_x: list[np.ndarray] = []
    cand_t: list[np.ndarray] = []
    evaluated = 0
    exceed_count = 0
    with np.errstate(invalid="ignore"):
        while e_arr.size:
            L = e_arr - i_arr
            y = mat[:, e_arr if off is None else off + e_arr] - bases
            total = (y[0] * y[0]) * inv_p[0]
            for j in range(1, k):
                total = total + (y[j] * y[j]) * inv_p[j]
            x2 = total / L - L
            evaluated += e_arr.size
            if eval_by_tag is not None:
                eval_by_tag += np.bincount(lane_tag, minlength=eval_by_tag.size)
            exceed = None
            if collect:
                exceed = x2 > bound
                if exceed.any():
                    exceed_count += int(exceed.sum())
                    if store:
                        idx = np.nonzero(exceed)[0]
                        cand_i.append(i_arr[idx])
                        cand_e.append(e_arr[idx])
                        cand_x.append(x2[idx])
                        if lane_tag is not None:
                            cand_t.append(lane_tag[idx])
                    if not exceed_unit:
                        # Per-lane bound tightening (see the binary pass).
                        bound = np.maximum(bound, x2)
                        bound_is_array = True
                        exceed = None
                elif not exceed_unit:
                    exceed = None
            beff = bound
            c_common = (x2 - beff) * L
            b = 2.0 * y - (2.0 * L) * p_col - p_col * beff
            c = c_common * p_col
            r = (-b + np.sqrt(b * b - four_a * c)) / two_a
            root = np.minimum.reduce(r, axis=0)
            if exceed_unit and exceed is not None:
                # Qualifying visits advance by one (their quadratic may
                # have no real root); NaNs from the sqrt land here too.
                root = np.where(exceed, 0.0, root)
            jump = np.where(root >= 1.0, root - _EPS, 0.0).astype(np.int64)
            np.minimum(jump, n - e_arr, out=jump)
            e_arr = e_arr + jump + 1
            alive = e_arr <= n
            if not alive.all():
                e_arr = e_arr[alive]
                i_arr = i_arr[alive]
                bases = bases[:, alive]
                if off is not None:
                    off = off[alive]
                if bound_is_array:
                    bound = bound[alive]
                if n_is_array:
                    n = n[alive]
                if lane_tag is not None:
                    lane_tag = lane_tag[alive]
    return (
        evaluated,
        exceed_count,
        np.concatenate(cand_i) if cand_i else _EMPTY_I,
        np.concatenate(cand_e) if cand_e else _EMPTY_I,
        np.concatenate(cand_x) if cand_x else _EMPTY_F,
        np.concatenate(cand_t) if cand_t else _EMPTY_I,
    )


def _scan_order(cand_i, cand_e, cand_x):
    """Sort candidate visits into scan order (start descending, end ascending)."""
    order = np.lexsort((cand_e, -cand_i))
    return cand_i[order], cand_e[order], cand_x[order]


def _running_max_rows(cand_i, cand_x, bound):
    """Rows where a running-maximum bound truly updates.

    ``cand_i``/``cand_x`` are scan-ordered discovery candidates; a
    candidate is a real update exactly when it beats every earlier one
    and the incoming ``bound`` -- the sequential scan's own rule.
    """
    rows: list[int] = []
    running = bound
    for row, value in zip(cand_i.tolist(), cand_x.tolist()):
        if value > running:
            running = value
            if not rows or rows[-1] != row:
                rows.append(row)
    return rows


def _row_span(n, i_lo, i_hi, e_offset):
    """Sum of ``n + 1 - e0`` over rows ``i_lo..i_hi`` with ``e0 = i + e_offset``."""
    count = i_hi - i_lo + 1
    sum_i = (i_lo + i_hi) * count // 2
    return count * (n + 1 - e_offset) - sum_i


def _sweep(n, top_row, e_offset, lane_pass, scalar_row, find_update_rows):
    """The shared discovery/replay block sweep over all start rows.

    Drives one scan end to end: a scalar head of :data:`_HEAD_ROWS` rows
    (where the pruning bound does most of its climbing), then
    doubling-size blocks, each run as a discovery pass first and -- only
    when the discovery pass surfaced bound-update candidates -- replayed
    exactly: the true update rows walk scalar, the gap runs between them
    re-run as bound-frozen wavefronts (or scalar below :data:`_SCALAR_GAP`
    rows, where a wavefront's per-step overhead cannot amortise).

    The problem-specific pieces come in as callbacks:

    ``lane_pass(i_hi, i_lo, collect)``
        run rows ``i_hi..i_lo`` as lanes under the *current* bound,
        returning ``(evaluated, cand_i, cand_e, cand_x)``;
    ``scalar_row(i)``
        walk one row with the reference walker, applying any bound
        updates to the caller's state, returning ``(d_ev, d_sk)``;
    ``find_update_rows(cand_i, cand_e, cand_x)``
        given the scan-ordered discovery candidates, return the rows in
        which the true sequential scan updates its bound (scan order).

    Returns the scan's total ``(evaluated, skipped)``; skips fall out of
    the lane identity ``skipped = span - evaluated`` per committed pass.
    """
    evaluated = 0
    skipped = 0

    def scalar_rows(hi, lo):
        nonlocal evaluated, skipped
        for i in range(hi, lo - 1, -1):
            d_ev, d_sk = scalar_row(i)
            evaluated += d_ev
            skipped += d_sk

    def replay_gap(hi, lo):
        nonlocal evaluated, skipped
        if hi - lo < _SCALAR_GAP:
            scalar_rows(hi, lo)
        else:
            ev, _, _, _ = lane_pass(hi, lo, False)
            evaluated += ev
            skipped += _row_span(n, lo, hi, e_offset) - ev

    head = min(top_row + 1, _HEAD_ROWS)
    scalar_rows(top_row, top_row - head + 1)
    i_hi = top_row - head
    size = _FIRST_BLOCK
    while i_hi >= 0:
        count = min(size, i_hi + 1)
        i_lo = i_hi - count + 1
        ev, ci, ce, cx = lane_pass(i_hi, i_lo, True)
        if ci.size == 0:
            # No visit beat the bound: the discovery pass was the exact
            # sequential scan of this block.  Commit it.
            evaluated += ev
            skipped += _row_span(n, i_lo, i_hi, e_offset) - ev
        else:
            update_rows = find_update_rows(*_scan_order(ci, ce, cx))
            prev = i_hi
            for row in update_rows:
                if prev > row:
                    replay_gap(prev, row + 1)
                scalar_rows(row, row)
                prev = row - 1
            if prev >= i_lo:
                replay_gap(prev, i_lo)
        i_hi = i_lo - 1
        size *= 2
    return evaluated, skipped


def _x2max_chunk(sub, n, k, probabilities):
    """X²max of each row of one ``(t, n)`` chunk of encoded null draws.

    Module-level (and free of backend state) so calibration can ship
    chunks to worker processes; see ``NumpyBackend.simulate_x2max``.
    """
    t = sub.shape[0]
    width = n + 1
    mat = np.zeros((k, t * width), dtype=np.int64)
    for j in range(k):
        rows = mat[j].reshape(t, width)
        np.cumsum(sub == j, axis=1, out=rows[:, 1:])
    best = np.full(t, -1.0)
    trial_ids = np.arange(t, dtype=np.int64)
    trial_off = trial_ids * width
    if k == 2:
        p0, p1 = probabilities
        pref1 = mat[1]
    i_hi = n - 1
    size = _CALIB_FIRST_BLOCK
    while i_hi >= 0:
        count = min(size, i_hi + 1)
        rows = np.arange(i_hi, i_hi - count, -1, dtype=np.int64)
        i_arr = np.tile(rows, t)
        tags = np.repeat(trial_ids, count)
        off = np.repeat(trial_off, count)
        e_arr = i_arr + 1
        bound = best[tags]
        if k == 2:
            _, _, _, cx, ct = _lane_pass_binary(
                pref1, n, i_arr, e_arr, off, bound, p0, p1,
                collect=True, lane_tag=tags,
            )
        else:
            _, _, _, _, cx, ct = _lane_pass_generic(
                mat, n, i_arr, e_arr, off, bound, probabilities,
                collect=True, lane_tag=tags,
            )
        if cx.size:
            np.maximum.at(best, ct, cx)
        i_hi -= count
        size *= 2
    return best.tolist()


def _calibration_workers() -> int:
    """Worker-process count for calibration, from :data:`CALIB_WORKERS_ENV`."""
    raw = os.environ.get(CALIB_WORKERS_ENV, "").strip()
    if not raw:
        return 1
    if raw.lower() == "auto":
        return os.cpu_count() or 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _simulate_chunked(chunk_fn, model, n, trials, seed):
    """Shared Monte-Carlo driver: chunked draws, pluggable chunk scans.

    ``chunk_fn(sub, n, k, probabilities)`` scores one ``(t, n)`` chunk of
    encoded null draws and returns its per-trial X²max list; it must be
    module-level (picklable) so chunks can ship to worker processes.
    Both the numpy and native backends run their ``simulate_x2max``
    through this driver, which owns the two properties the contract
    cares about:

    * draws happen here, sequentially, from the one RNG stream -- in
      memory-bounded chunks that consume the ``Generator`` exactly as
      ``trials`` sequential length-``n`` draws would -- so samples are
      bit-identical to the reference at any worker count;
    * with ``REPRO_CALIB_WORKERS`` set, chunk scans fan out over a
      process pool with a bounded in-flight window (the serial path's
      :data:`_CALIB_CHUNK_ELEMS` peak-memory bound times the worker
      count), falling back to an in-process rescan of the retained draw
      when a worker dies or the pool cannot start.
    """
    rng = resolve_rng(seed)
    k = model.k
    probabilities = model.probabilities
    p_arr = np.asarray(probabilities)
    chunk = max(1, _CALIB_CHUNK_ELEMS // (k * (n + 1)))
    starts = range(0, trials, chunk)
    workers = _calibration_workers()
    samples: list[float] = []
    if workers > 1 and len(starts) > 1:
        window = min(workers, len(starts))
        try:
            pool_cm = concurrent.futures.ProcessPoolExecutor(
                max_workers=window
            )
        except OSError:
            pool_cm = None  # no draws consumed yet: serial path below

        def finish(entry):
            # Collect one chunk's samples; if its worker died (or the
            # pool never started -- sandboxed environments), rescan
            # the retained draw in-process.  Either way the samples
            # are the draw's, so the stream stays bit-identical.
            future, sub = entry
            if future is not None:
                try:
                    return future.result()
                except (OSError, RuntimeError):
                    pass
            return chunk_fn(sub, n, k, probabilities)

        # Draws stay sequential in the driver (one RNG stream); each
        # drawn chunk is retained alongside its future until its
        # result lands, and at most 2 * window chunks are in flight --
        # the serial path's peak-memory bound times the worker count,
        # not the trial count.
        if pool_cm is not None:
            in_flight: list = []
            with pool_cm as pool:
                for start in starts:
                    sub = rng.choice(
                        k, size=(min(chunk, trials - start), n), p=p_arr
                    )
                    try:
                        future = pool.submit(
                            chunk_fn, sub, n, k, probabilities
                        )
                    except (OSError, RuntimeError):
                        future = None
                    in_flight.append((future, sub))
                    if len(in_flight) >= 2 * window:
                        samples.extend(finish(in_flight.pop(0)))
                for entry in in_flight:
                    samples.extend(finish(entry))
            return samples
    for start in starts:
        # Chunked draws consume the Generator stream in the same
        # row-major order as one (trials, n) call -- and as the
        # reference backend's per-trial draws -- so chunking bounds
        # peak memory without touching the samples.
        sub = rng.choice(k, size=(min(chunk, trials - start), n), p=p_arr)
        samples.extend(chunk_fn(sub, n, k, probabilities))
    return samples


class _BatchCorpus:
    """Many documents' prefix matrices concatenated into one flat matrix.

    ``mat`` is ``(k, sum(n_d + 1))``; lane gathers into it use
    ``offsets[d] + position``.  Holding one matrix (rather than one per
    document) is what lets a single wavefront step advance lanes of every
    document at once.
    """

    __slots__ = ("indexes", "n_arr", "offsets", "mat")

    def __init__(self, indexes):
        self.indexes = list(indexes)
        self.n_arr = np.array([index.n for index in self.indexes],
                              dtype=np.int64)
        widths = self.n_arr + 1
        self.offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(widths)[:-1])
        )
        self.mat = np.concatenate(
            [index.counts_matrix() for index in self.indexes], axis=1
        )


def _run_batched_sweep(corpus, e_offset, bounds, scalar_row, update_rows,
                       lane_pass):
    """The multi-document discovery/replay sweep behind ``mine_batch``.

    The schedule is the single-document :func:`_sweep` applied to every
    document simultaneously: each document walks its own scalar head,
    then the doubling blocks advance in lockstep -- block ``b`` of every
    still-active document runs as *one* wavefront (per-lane document tag,
    offset, length and bound), which is where the per-document kernel
    dispatch of a corpus loop is amortised away.  Everyone whose block
    surfaced no bound-update candidates commits the discovery counters
    via the lane identity; the rest replay the block exactly -- and the
    replays batch across documents too, in *phases*: every replaying
    document's next gap run (rows between bound updates, whose bounds
    are now known constants) joins one shared frozen wavefront, then
    each walks its next update row scalar, and so on until all replays
    drain.  The result is bit-identical to running :func:`_sweep` per
    document.

    Callbacks (all per document ``d``):

    ``scalar_row(d, i)``
        walk one row with the reference walker, updating the caller's
        per-document state *and* ``bounds[d]``; returns ``(ev, sk)``;
    ``update_rows(d, ci, ce, cx)``
        scan-ordered discovery candidates -> rows where the sequential
        scan truly updates its bound;
    ``lane_pass(i_arr, e_arr, off, n_lane, bound, tags, eval_by_tag,
    collect)``
        run a wavefront over many documents' lanes -- discovery when
        ``collect``, exact frozen replay otherwise -- returning
        ``(cand_i, cand_e, cand_x, cand_tag)``.

    Returns per-document ``(evaluated, skipped)`` int64 arrays.
    """
    docs = len(corpus.indexes)
    n_arr = corpus.n_arr
    offsets = corpus.offsets
    evaluated = np.zeros(docs, dtype=np.int64)
    skipped = np.zeros(docs, dtype=np.int64)

    def scalar_rows(d, hi, lo):
        for i in range(hi, lo - 1, -1):
            d_ev, d_sk = scalar_row(d, i)
            evaluated[d] += d_ev
            skipped[d] += d_sk

    def frozen_pass(specs):
        """One exact wavefront over every (d, hi, lo) gap at once."""
        total = sum(hi - lo + 1 for _, hi, lo in specs)
        if total < _SCALAR_GAP:
            for d, hi, lo in specs:
                scalar_rows(d, hi, lo)
            return
        i_arr = np.concatenate([
            np.arange(hi, lo - 1, -1, dtype=np.int64) for _, hi, lo in specs
        ])
        tags = np.concatenate([
            np.full(hi - lo + 1, d, dtype=np.int64) for d, hi, lo in specs
        ])
        eval_by_tag = np.zeros(docs, dtype=np.int64)
        lane_pass(i_arr, i_arr + e_offset, offsets[tags], n_arr[tags],
                  bounds[tags], tags, eval_by_tag, False)
        for d, hi, lo in specs:
            ev = int(eval_by_tag[d])
            evaluated[d] += ev
            skipped[d] += _row_span(int(n_arr[d]), lo, hi, e_offset) - ev

    i_hi = np.empty(docs, dtype=np.int64)
    for d in range(docs):
        top = int(n_arr[d]) - e_offset
        head = min(top + 1, _HEAD_ROWS)
        scalar_rows(d, top, top - head + 1)
        i_hi[d] = top - head

    size = _FIRST_BLOCK
    while True:
        alive = np.nonzero(i_hi >= 0)[0]
        if alive.size == 0:
            break
        parts_i: list[np.ndarray] = []
        parts_t: list[np.ndarray] = []
        i_lo: dict[int, int] = {}
        for d in alive.tolist():
            count = min(size, int(i_hi[d]) + 1)
            lo = int(i_hi[d]) - count + 1
            i_lo[d] = lo
            parts_i.append(np.arange(int(i_hi[d]), lo - 1, -1, dtype=np.int64))
            parts_t.append(np.full(count, d, dtype=np.int64))
        i_arr = np.concatenate(parts_i)
        tags = np.concatenate(parts_t)
        eval_by_tag = np.zeros(docs, dtype=np.int64)
        ci, ce, cx, ct = lane_pass(i_arr, i_arr + e_offset, offsets[tags],
                                   n_arr[tags], bounds[tags], tags,
                                   eval_by_tag, True)
        # prev row, true update rows, next-update cursor per replaying doc
        replay: dict[int, list] = {}
        for d in alive.tolist():
            hi = int(i_hi[d])
            lo = i_lo[d]
            mask = ct == d
            if not mask.any():
                # No visit of this document beat its bound: the discovery
                # pass was its exact sequential scan.  Commit it.
                ev = int(eval_by_tag[d])
                evaluated[d] += ev
                skipped[d] += _row_span(int(n_arr[d]), lo, hi, e_offset) - ev
            else:
                rows = update_rows(d, *_scan_order(ci[mask], ce[mask],
                                                   cx[mask]))
                replay[d] = [hi, rows, 0]
            i_hi[d] = lo - 1
        while replay:
            specs = []
            for d, state in replay.items():
                prev, rows, cursor = state
                gap_lo = rows[cursor] + 1 if cursor < len(rows) else i_lo[d]
                if prev >= gap_lo:
                    specs.append((d, prev, gap_lo))
            if specs:
                frozen_pass(specs)
            drained = []
            for d, state in replay.items():
                prev, rows, cursor = state
                if cursor < len(rows):
                    scalar_rows(d, rows[cursor], rows[cursor])
                    state[0] = rows[cursor] - 1
                    state[2] = cursor + 1
                else:
                    drained.append(d)
            for d in drained:
                del replay[d]
        size *= 2
    return evaluated, skipped


class NumpyBackend:
    """Vectorised kernels, bit-identical to :class:`PythonBackend`."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Problem 1: MSS
    # ------------------------------------------------------------------

    def scan_mss(self, index, model):
        """Full MSS scan as a block sweep of wavefront lane passes.

        Same contract as :meth:`PythonBackend.scan_mss`: returns
        ``(best, (start, end), evaluated, skipped)``, bit-identical.
        """
        n = index.n
        binary = model.k == 2
        probabilities = model.probabilities
        best = -1.0
        best_start = 0
        best_end = 1
        mat = index.counts_matrix()
        if binary:
            pref1_list = index.prefix_lists[1]
            pref1 = mat[1]
            p0, p1 = probabilities
        else:
            prefix = index.prefix_lists
            inv_p = [1.0 / p for p in probabilities]

        def scalar_row(i):
            nonlocal best, best_start, best_end
            if binary:
                best, best_start, best_end, d_ev, d_sk = mss_row_binary(
                    pref1_list, n, i, i + 1, best, best_start, best_end, p0, p1
                )
            else:
                best, best_start, best_end, d_ev, d_sk = mss_row_generic(
                    prefix, n, i, i + 1, best, best_start, best_end,
                    probabilities, inv_p,
                )
            return d_ev, d_sk

        def lane_pass(i_hi, i_lo, collect):
            i_arr = np.arange(i_hi, i_lo - 1, -1, dtype=np.int64)
            e_arr = i_arr + 1
            if binary:
                ev, ci, ce, cx, _ = _lane_pass_binary(
                    pref1, n, i_arr, e_arr, None, best, p0, p1, collect=collect
                )
            else:
                ev, _, ci, ce, cx, _ = _lane_pass_generic(
                    mat, n, i_arr, e_arr, None, best, probabilities,
                    collect=collect,
                )
            return ev, ci, ce, cx

        evaluated, skipped = _sweep(
            n, n - 1, 1, lane_pass, scalar_row,
            lambda ci, ce, cx: _running_max_rows(ci, cx, best),
        )
        return best, (best_start, best_end), evaluated, skipped

    # ------------------------------------------------------------------
    # Problem 4: MSS with a length floor
    # ------------------------------------------------------------------

    def scan_mss_min_length(self, index, model, min_length):
        """Problem 4 scan (generic arithmetic for every ``k``, as the
        reference does); same contract as
        :meth:`PythonBackend.scan_mss_min_length`, bit-identical."""
        n = index.n
        prefix = index.prefix_lists
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        mat = index.counts_matrix()
        best = -1.0
        best_start = 0
        best_end = min_length

        def scalar_row(i):
            nonlocal best, best_start, best_end
            best, best_start, best_end, d_ev, d_sk = mss_row_generic(
                prefix, n, i, i + min_length, best, best_start, best_end,
                probabilities, inv_p,
            )
            return d_ev, d_sk

        def lane_pass(i_hi, i_lo, collect):
            i_arr = np.arange(i_hi, i_lo - 1, -1, dtype=np.int64)
            e_arr = i_arr + min_length
            ev, _, ci, ce, cx, _ = _lane_pass_generic(
                mat, n, i_arr, e_arr, None, best, probabilities,
                collect=collect,
            )
            return ev, ci, ce, cx

        evaluated, skipped = _sweep(
            n, n - min_length, min_length, lane_pass, scalar_row,
            lambda ci, ce, cx: _running_max_rows(ci, cx, best),
        )
        return best, (best_start, best_end), evaluated, skipped

    # ------------------------------------------------------------------
    # Problem 2: top-t
    # ------------------------------------------------------------------

    def scan_top_t(self, index, model, t):
        """Top-t scan; the replay simulates the heap over scan-ordered
        exceedances to find the true update rows.  Same contract as
        :meth:`PythonBackend.scan_top_t` -- returns the raw size-t heap --
        and bit-identical to it."""
        n = index.n
        prefix = index.prefix_lists
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        mat = index.counts_matrix()
        heap: list[tuple[float, int, int]] = [(0.0, -1, -1)] * t
        bound = 0.0

        def scalar_row(i):
            nonlocal bound
            bound, d_ev, d_sk = topt_row(
                prefix, n, i, i + 1, heap, bound, probabilities, inv_p
            )
            return d_ev, d_sk

        def lane_pass(i_hi, i_lo, collect):
            i_arr = np.arange(i_hi, i_lo - 1, -1, dtype=np.int64)
            e_arr = i_arr + 1
            ev, _, ci, ce, cx, _ = _lane_pass_generic(
                mat, n, i_arr, e_arr, None, bound, probabilities,
                collect=collect,
            )
            return ev, ci, ce, cx

        def heap_update_rows(ci, ce, cx):
            # Simulate the heap over the scan-ordered exceedances to find
            # exactly which rows replace a heap entry (the real heap is
            # mutated by the scalar replay walks, not here).
            sim = list(heap)
            rows: list[int] = []
            for row, end, value in zip(ci.tolist(), ce.tolist(), cx.tolist()):
                if value > sim[0][0]:
                    heapq.heapreplace(sim, (value, row, end))
                    if not rows or rows[-1] != row:
                        rows.append(row)
            return rows

        evaluated, skipped = _sweep(
            n, n - 1, 1, lane_pass, scalar_row, heap_update_rows
        )
        return heap, evaluated, skipped

    # ------------------------------------------------------------------
    # Problem 3: threshold
    # ------------------------------------------------------------------

    def scan_threshold(self, index, model, alpha0, limit=None, count_only=False):
        """Threshold scan.  The bound never moves, so every wavefront
        pass is exact and only ``limit`` truncation needs scan-order
        care.  Same contract as :meth:`PythonBackend.scan_threshold`,
        bit-identical including the truncated prefix of matches."""
        if limit is not None and limit < 1:
            # The reference walker truncates right after appending match
            # number max(limit, 1); clamping keeps the kernels agreeing
            # even on a nonsensical limit a third-party caller slips past
            # find_above_threshold's validation.
            limit = 1
        n = index.n
        prefix = index.prefix_lists
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        mat = index.counts_matrix()
        found: list[tuple[float, int, int]] = []
        match_count = 0
        truncated = False
        evaluated = 0
        skipped = 0

        def scalar_row(i):
            nonlocal match_count, truncated, evaluated, skipped
            d_ev, d_sk, d_match, truncated = threshold_row(
                prefix, n, i, i + 1, alpha0, probabilities, inv_p, found,
                limit, count_only,
            )
            evaluated += d_ev
            skipped += d_sk
            match_count += d_match

        head = min(n, _HEAD_ROWS)
        for i in range(n - 1, n - head - 1, -1):
            scalar_row(i)
            if truncated:
                return found, match_count, truncated, evaluated, skipped

        def lane_pass(i_hi, i_lo, store):
            i_arr = np.arange(i_hi, i_lo - 1, -1, dtype=np.int64)
            e_arr = i_arr + 1
            return _lane_pass_generic(
                mat, n, i_arr, e_arr, None, alpha0, probabilities,
                collect=True, exceed_unit=True, store=store,
            )

        i_hi = n - head - 1
        size = _FIRST_BLOCK
        while i_hi >= 0:
            count = min(size, i_hi + 1)
            i_lo = i_hi - count + 1
            materialise = not count_only
            ev, n_match, ci, ce, cx = lane_pass(i_hi, i_lo, materialise)[:5]
            if materialise and limit is not None and len(found) + n_match >= limit:
                # The scan truncates inside this block.  The matches of a
                # fixed-bound pass are exact per row, so the scan-order
                # position of match number ``limit`` identifies the row
                # the sequential scan stopped in; rows above it are
                # replayed for exact counters, that row is walked scalar
                # with the real remaining capacity.
                ci, ce, cx = _scan_order(ci, ce, cx)
                cut_row = int(ci[limit - len(found) - 1])
                if i_hi > cut_row:
                    ev, n_match, _, _, _ = lane_pass(i_hi, cut_row + 1, False)[:5]
                    keep = ci > cut_row
                    for value, row, end in zip(
                        cx[keep].tolist(), ci[keep].tolist(), ce[keep].tolist()
                    ):
                        found.append((value, row, end))
                    match_count += n_match
                    evaluated += ev
                    skipped += _row_span(n, cut_row + 1, i_hi, 1) - ev
                scalar_row(cut_row)
                return found, match_count, truncated, evaluated, skipped
            if materialise and ci.size:
                ci, ce, cx = _scan_order(ci, ce, cx)
                for value, row, end in zip(cx.tolist(), ci.tolist(), ce.tolist()):
                    found.append((value, row, end))
            match_count += n_match
            evaluated += ev
            skipped += _row_span(n, i_lo, i_hi, 1) - ev
            i_hi = i_lo - 1
            size *= 2
        return found, match_count, truncated, evaluated, skipped

    # ------------------------------------------------------------------
    # Corpus batching
    # ------------------------------------------------------------------

    def mine_batch(self, indexes, model, spec):
        """Mine many (ragged) documents as one multi-document wavefront.

        Same contract as :meth:`PythonBackend.mine_batch` -- one raw
        single-document scan tuple per document, in input order,
        bit-identical to the per-document loop -- but a corpus chunk runs
        as *one* batched sweep: all documents' prefix matrices
        concatenate into one flat matrix, every document contributes
        lanes (tagged with its id, masked at its true length) to shared
        wavefront passes, and only documents whose pruning bound truly
        moves inside a block replay that block alone.  This is the same
        trial-sharing idea as :meth:`simulate_x2max`, with the full
        exactness machinery kept per document.

        ``"threshold"`` with a ``limit`` stays inside the shared
        wavefront too: a fixed-bound pass's matches are exact per row,
        so when a document's running match total reaches its limit the
        scan-order position of match number ``limit`` pins down the row
        the sequential scan truncated in; that document alone replays
        the rows above the cut for exact counters and walks the cut row
        scalar, while every other document's lanes continue untouched.
        """
        problem = spec.problem
        if problem in ("mss", "minlength"):
            e_offset = 1 if problem == "mss" else spec.min_length
            return self._mine_batch_best(indexes, model, e_offset)
        if problem == "top":
            return self._mine_batch_top(indexes, model, spec.t)
        if problem == "threshold":
            return self._mine_batch_threshold(
                indexes, model, spec.threshold, spec.limit
            )
        raise ValueError(f"unknown problem {problem!r}")

    def _mine_batch_best(self, indexes, model, e_offset):
        """Batched running-maximum scans (``mss`` / ``minlength``)."""
        corpus = _BatchCorpus(indexes)
        docs = len(corpus.indexes)
        probabilities = model.probabilities
        binary = model.k == 2 and e_offset == 1
        bounds = np.full(docs, -1.0)
        best_start = [0] * docs
        best_end = [e_offset] * docs
        if binary:
            p0, p1 = probabilities
            pref1 = corpus.mat[1]
        else:
            inv_p = [1.0 / p for p in probabilities]

        def scalar_row(d, i):
            index = corpus.indexes[d]
            n = index.n
            if binary:
                best, bs, be, d_ev, d_sk = mss_row_binary(
                    index.prefix_lists[1], n, i, i + 1,
                    float(bounds[d]), best_start[d], best_end[d], p0, p1,
                )
            else:
                best, bs, be, d_ev, d_sk = mss_row_generic(
                    index.prefix_lists, n, i, i + e_offset,
                    float(bounds[d]), best_start[d], best_end[d],
                    probabilities, inv_p,
                )
            bounds[d] = best
            best_start[d] = bs
            best_end[d] = be
            return d_ev, d_sk

        def update_rows(d, ci, ce, cx):
            return _running_max_rows(ci, cx, float(bounds[d]))

        def lane_pass(i_arr, e_arr, off, n_lane, bound, tags, eval_by_tag,
                      collect):
            if binary:
                _, ci, ce, cx, ct = _lane_pass_binary(
                    pref1, n_lane, i_arr, e_arr, off, bound, p0, p1,
                    collect=collect, lane_tag=tags, eval_by_tag=eval_by_tag,
                )
            else:
                _, _, ci, ce, cx, ct = _lane_pass_generic(
                    corpus.mat, n_lane, i_arr, e_arr, off, bound,
                    probabilities, collect=collect, lane_tag=tags,
                    eval_by_tag=eval_by_tag,
                )
            return ci, ce, cx, ct

        evaluated, skipped = _run_batched_sweep(
            corpus, e_offset, bounds, scalar_row, update_rows, lane_pass,
        )
        return [
            (float(bounds[d]), (best_start[d], best_end[d]),
             int(evaluated[d]), int(skipped[d]))
            for d in range(docs)
        ]

    def _mine_batch_top(self, indexes, model, t):
        """Batched top-t scans: one heap and heap-root bound per document."""
        corpus = _BatchCorpus(indexes)
        docs = len(corpus.indexes)
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        heaps: list[list[tuple[float, int, int]]] = [
            [(0.0, -1, -1)] * min(t, index.n * (index.n + 1) // 2)
            for index in corpus.indexes
        ]
        bounds = np.zeros(docs)

        def scalar_row(d, i):
            index = corpus.indexes[d]
            bound, d_ev, d_sk = topt_row(
                index.prefix_lists, index.n, i, i + 1, heaps[d],
                float(bounds[d]), probabilities, inv_p,
            )
            bounds[d] = bound
            return d_ev, d_sk

        def update_rows(d, ci, ce, cx):
            sim = list(heaps[d])
            rows: list[int] = []
            for row, end, value in zip(ci.tolist(), ce.tolist(), cx.tolist()):
                if value > sim[0][0]:
                    heapq.heapreplace(sim, (value, row, end))
                    if not rows or rows[-1] != row:
                        rows.append(row)
            return rows

        def lane_pass(i_arr, e_arr, off, n_lane, bound, tags, eval_by_tag,
                      collect):
            _, _, ci, ce, cx, ct = _lane_pass_generic(
                corpus.mat, n_lane, i_arr, e_arr, off, bound, probabilities,
                collect=collect, lane_tag=tags, eval_by_tag=eval_by_tag,
            )
            return ci, ce, cx, ct

        evaluated, skipped = _run_batched_sweep(
            corpus, 1, bounds, scalar_row, update_rows, lane_pass
        )
        return [
            (heaps[d], int(evaluated[d]), int(skipped[d]))
            for d in range(docs)
        ]

    def _mine_batch_threshold(self, indexes, model, alpha0, limit=None):
        """Batched threshold scans: fixed bound, truncation per document.

        Without a ``limit`` no replay ever happens (the bound never
        moves).  With one, each document carries its own remaining
        capacity: the moment a document's running match total reaches
        ``limit`` inside a shared block, the scan-order position of its
        match number ``limit`` identifies the row the sequential scan
        stopped in (the matches of a fixed-bound pass are exact per
        row); that document replays the rows above the cut for exact
        counters, walks the cut row with the scalar reference walker
        (which applies the real remaining capacity and sets
        ``truncated``), and retires -- all other documents' lanes are
        unaffected.  Bit-identical to the per-document
        :meth:`scan_threshold`, including the truncated match prefix and
        the stopping point.
        """
        if limit is not None and limit < 1:
            limit = 1  # mirror scan_threshold's clamp for rogue callers
        corpus = _BatchCorpus(indexes)
        docs = len(corpus.indexes)
        n_arr = corpus.n_arr
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        found: list[list[tuple[float, int, int]]] = [[] for _ in range(docs)]
        match_count = [0] * docs
        truncated = [False] * docs
        evaluated = np.zeros(docs, dtype=np.int64)
        skipped = np.zeros(docs, dtype=np.int64)
        i_hi = np.empty(docs, dtype=np.int64)
        for d, index in enumerate(corpus.indexes):
            n = index.n
            head = min(n, _HEAD_ROWS)
            i_hi[d] = n - head - 1
            for i in range(n - 1, n - head - 1, -1):
                d_ev, d_sk, d_match, trunc = threshold_row(
                    index.prefix_lists, n, i, i + 1, alpha0, probabilities,
                    inv_p, found[d], limit, False,
                )
                evaluated[d] += d_ev
                skipped[d] += d_sk
                match_count[d] += d_match
                if trunc:
                    truncated[d] = True
                    i_hi[d] = -1
                    break

        size = _FIRST_BLOCK
        while True:
            alive = np.nonzero(i_hi >= 0)[0]
            if alive.size == 0:
                break
            parts_i: list[np.ndarray] = []
            parts_t: list[np.ndarray] = []
            i_lo: dict[int, int] = {}
            for d in alive.tolist():
                count = min(size, int(i_hi[d]) + 1)
                lo = int(i_hi[d]) - count + 1
                i_lo[d] = lo
                parts_i.append(
                    np.arange(int(i_hi[d]), lo - 1, -1, dtype=np.int64)
                )
                parts_t.append(np.full(count, d, dtype=np.int64))
            i_arr = np.concatenate(parts_i)
            tags = np.concatenate(parts_t)
            eval_by_tag = np.zeros(docs, dtype=np.int64)
            _, _, ci, ce, cx, ct = _lane_pass_generic(
                corpus.mat, n_arr[tags], i_arr, i_arr + 1,
                corpus.offsets[tags], alpha0, probabilities,
                collect=True, exceed_unit=True, store=True, lane_tag=tags,
                eval_by_tag=eval_by_tag,
            )
            for d in alive.tolist():
                hi = int(i_hi[d])
                lo = i_lo[d]
                n_d = int(n_arr[d])
                mask = ct == d
                n_match = int(mask.sum())
                if limit is not None and len(found[d]) + n_match >= limit:
                    # This document truncates inside the block (see the
                    # docstring); replay above the cut, scalar the cut
                    # row, retire the document.
                    oi, oe, ox = _scan_order(ci[mask], ce[mask], cx[mask])
                    cut_row = int(oi[limit - len(found[d]) - 1])
                    if hi > cut_row:
                        rows = np.arange(hi, cut_row, -1, dtype=np.int64)
                        off = np.full(
                            rows.size, int(corpus.offsets[d]), dtype=np.int64
                        )
                        ev, n_above, _, _, _, _ = _lane_pass_generic(
                            corpus.mat, n_d, rows, rows + 1, off, alpha0,
                            probabilities, collect=True, exceed_unit=True,
                            store=False,
                        )
                        keep = oi > cut_row
                        for value, row, end in zip(
                            ox[keep].tolist(), oi[keep].tolist(),
                            oe[keep].tolist()
                        ):
                            found[d].append((value, row, end))
                        match_count[d] += n_above
                        evaluated[d] += ev
                        skipped[d] += _row_span(n_d, cut_row + 1, hi, 1) - ev
                    d_ev, d_sk, d_match, trunc = threshold_row(
                        corpus.indexes[d].prefix_lists, n_d, cut_row,
                        cut_row + 1, alpha0, probabilities, inv_p, found[d],
                        limit, False,
                    )
                    evaluated[d] += d_ev
                    skipped[d] += d_sk
                    match_count[d] += d_match
                    truncated[d] = trunc
                    i_hi[d] = -1
                    continue
                if n_match:
                    oi, oe, ox = _scan_order(ci[mask], ce[mask], cx[mask])
                    for value, row, end in zip(ox.tolist(), oi.tolist(),
                                               oe.tolist()):
                        found[d].append((value, row, end))
                    match_count[d] += n_match
                ev = int(eval_by_tag[d])
                evaluated[d] += ev
                skipped[d] += _row_span(n_d, lo, hi, 1) - ev
                i_hi[d] = lo - 1
            size *= 2
        return [
            (found[d], match_count[d], truncated[d], int(evaluated[d]),
             int(skipped[d]))
            for d in range(docs)
        ]

    # ------------------------------------------------------------------
    # Routed auxiliary kernels
    # ------------------------------------------------------------------

    def best_over_pairs(self, counts_matrix, inv_p, starts, ends):
        """Vectorised candidate-pair search (one pass per start).

        Same contract and bit-identical results as
        :meth:`PythonBackend.best_over_pairs`: the character accumulation
        runs as an explicit ``j``-loop so the summation order matches the
        reference exactly.
        """
        starts = np.unique(np.asarray(starts, dtype=np.int64))
        ends = np.unique(np.asarray(ends, dtype=np.int64))
        counts_matrix = np.asarray(counts_matrix)
        k = counts_matrix.shape[0]
        inv = [float(v) for v in inv_p]
        end_counts = counts_matrix[:, ends].astype(np.float64)
        end_positions = ends.astype(np.float64)
        best = -math.inf
        best_pair = (0, 0)
        evaluated = 0
        for s in starts.tolist():
            lengths = end_positions - s
            valid = lengths > 0
            if not valid.any():
                continue
            window = end_counts[:, valid] - counts_matrix[:, s : s + 1]
            lengths = lengths[valid]
            total = (window[0] * window[0]) * inv[0]
            for j in range(1, k):
                total = total + (window[j] * window[j]) * inv[j]
            x2 = total / lengths - lengths
            evaluated += int(x2.size)
            offset = int(np.argmax(x2))
            value = float(x2[offset])
            if value > best:
                best = value
                best_pair = (s, int(ends[valid][offset]))
        return best, best_pair, evaluated

    def score_spans(self, index, model, starts, ends):
        """Elementwise span X² (same contract as
        :meth:`PythonBackend.score_spans`, bit-identical)."""
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        mat = index.counts_matrix()
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        y = mat[:, ends] - mat[:, starts]
        total = (y[0] * y[0]) * inv_p[0]
        for j in range(1, len(probabilities)):
            total = total + (y[j] * y[j]) * inv_p[j]
        lengths = (ends - starts).astype(np.float64)
        return (total / lengths - lengths).tolist()

    def scan_mss_exhaustive(self, index, model):
        """Exhaustive O(n²) scan, one vectorised profile per start row.

        Same contract and bit-identical results as
        :meth:`PythonBackend.scan_mss_exhaustive` (explicit character
        loop, first-maximum tie-breaking).
        """
        n = index.n
        mat = index.counts_matrix()
        probabilities = model.probabilities
        inv_p = [1.0 / p for p in probabilities]
        k = len(probabilities)
        best = -1.0
        best_start, best_end = 0, 1
        for i in range(n):
            window = mat[:, i + 1 :] - mat[:, i : i + 1]
            total = (window[0] * window[0]) * inv_p[0]
            for j in range(1, k):
                total = total + (window[j] * window[j]) * inv_p[j]
            lengths = np.arange(1, n - i + 1, dtype=np.float64)
            profile = total / lengths - lengths
            offset = int(np.argmax(profile))
            value = float(profile[offset])
            if value > best:
                best = value
                best_start, best_end = i, i + offset + 1
        return best, (best_start, best_end), n * (n + 1) // 2

    def scan_mss_skips(self, index, model):
        """Instrumented skip-profile scan.

        Profiling instruments the *sequential* scan -- its records are
        the sequential trace itself, so there is nothing to vectorise
        without replaying every visit scalar anyway.  The numpy backend
        therefore shares the reference implementation (see
        :meth:`PythonBackend.scan_mss_skips`); parity is by construction.
        """
        return PythonBackend().scan_mss_skips(index, model)

    # ------------------------------------------------------------------
    # Monte-Carlo calibration
    # ------------------------------------------------------------------

    def simulate_x2max(self, model, n, trials, seed):
        """X²max of ``trials`` null strings, all simulated as one batch.

        The sample matrix (drawn in memory-bounded chunks of trials)
        consumes the RNG stream exactly as ``trials`` sequential
        length-``n`` draws would, so the samples are bit-identical to
        the reference backend's.  The
        scans then run as one big wavefront: lanes span *every* trial's
        start positions at once (trials are independent, so each lane
        carries its own trial's running-maximum bound), and only the
        maxima matter -- exceedances fold into the per-trial best via a
        scatter-max, with no replay machinery at all.

        Multi-core: set ``REPRO_CALIB_WORKERS`` (an integer, or ``auto``
        for every core) to fan the trial chunks over a process pool.
        The chunked-draw/bounded-window mechanics live in the shared
        :func:`_simulate_chunked` driver (the native backend reuses it
        with its own chunk function); samples stay bit-identical at any
        worker count.
        """
        return _simulate_chunked(_x2max_chunk, model, n, trials, seed)

    def __repr__(self) -> str:
        return "NumpyBackend()"
