"""repro: mining statistically significant substrings with the chi-square statistic.

A full reproduction of Sachan & Bhattacharya, *Mining Statistically
Significant Substrings using the Chi-Square Statistic*, VLDB 2012.

Quickstart
----------
>>> from repro import BernoulliModel, find_mss
>>> model = BernoulliModel.uniform("ab")
>>> text = "ab" * 20 + "aaaaaaaaaa" + "ba" * 20
>>> result = find_mss(text, model)
>>> result.best.slice(text)
'aaaaaaaaaa'
>>> result.best.p_value < 0.01
True

The public API re-exported here covers the paper's four problems
(:func:`find_mss`, :func:`find_top_t`, :func:`find_above_threshold`,
:func:`find_mss_min_length`), the null model and statistic, and the
p-value machinery.  Baselines, generators, datasets and extensions live in
their own subpackages:

* :mod:`repro.baselines` -- trivial / blocked / heap / ARLM / AGMM.
* :mod:`repro.stats` -- chi-square distribution, LR statistic, exact
  p-values, concentration bounds.
* :mod:`repro.generators` -- null / geometric / zipf / Markov /
  correlated / planted-anomaly string generators.
* :mod:`repro.datasets` -- synthetic sports-rivalry and securities data.
* :mod:`repro.strings` -- suffix tree, suffix automaton, run-length blocks.
* :mod:`repro.extensions` -- 2-D grids, Markov nulls, windows, graphs.
* :mod:`repro.engine` -- parallel corpus mining with batched kernel
  dispatch (``batch_docs``), cached calibration and multiple-testing
  correction (:class:`CorpusEngine`).
* :mod:`repro.service` -- the async mining service over the engine
  (``repro-mss serve``): request micro-batching, a persistent
  shared-memory worker pool, deterministic backpressure, and a
  disk-backed calibration cache for zero-trial warm restarts.
* :mod:`repro.kernels` -- pluggable scan/calibration kernel backends
  (vectorised ``"numpy"`` default, ``"python"`` reference; selectable
  per call, via ``REPRO_BACKEND``, or ``--backend`` on the CLI).  The
  full backend contract lives in that module's docstring and in
  ``docs/ARCHITECTURE.md``.
"""

from repro.core import (
    BernoulliModel,
    ChiSquareScorer,
    MSSResult,
    PrefixCountIndex,
    ScanStats,
    SignificantSubstring,
    ThresholdResult,
    TopTResult,
    chi_square,
    chi_square_from_counts,
    find_above_threshold,
    find_mss,
    find_mss_min_length,
    find_top_t,
)
from repro.kernels import available_backends, get_backend
from repro.stats import chi2_critical_value, chi2_sf, p_value

__version__ = "1.1.0"

# The corpus engine is re-exported lazily (PEP 562): it pulls in
# concurrent.futures and the calibration machinery, which single-string
# entry points (and the non-batch CLI) should not pay for at import time.
_ENGINE_EXPORTS = frozenset(
    {
        "CorpusEngine",
        "CorpusResult",
        "MiningJob",
        "JobSpec",
        "DocumentResult",
        "CalibrationCache",
    }
)


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from repro import engine

        value = getattr(engine, name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BernoulliModel",
    "ChiSquareScorer",
    "PrefixCountIndex",
    "chi_square",
    "chi_square_from_counts",
    "find_mss",
    "find_top_t",
    "find_above_threshold",
    "find_mss_min_length",
    "MSSResult",
    "TopTResult",
    "ThresholdResult",
    "ScanStats",
    "SignificantSubstring",
    "CorpusEngine",
    "CorpusResult",
    "MiningJob",
    "JobSpec",
    "DocumentResult",
    "CalibrationCache",
    "chi2_critical_value",
    "chi2_sf",
    "p_value",
    "get_backend",
    "available_backends",
    "__version__",
]
