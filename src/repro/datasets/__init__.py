"""Dataset substitutes for the paper's real-world experiments (§7.5).

The paper mines two proprietary-ish data sources: the Yankees-Red Sox
game log (baseball-reference.com) and daily closes of Dow/S&P 500/IBM
(finance.yahoo.com).  Neither is redistributable nor reachable offline,
so this subpackage builds *seeded synthetic reconstructions* that plant
the exact statistical structure the paper reports -- window lengths,
within-window counts, and global symbol ratios -- while drawing
everything else from the null model.  X² depends only on those planted
quantities, so the mining landscape (who wins, which windows surface,
approximate X² values) is preserved; see DESIGN.md's substitution table.

Loaders for *real* CSV data are also provided so users with access to the
original sources can run the identical pipeline on them.
"""

from repro.datasets.baseball import (
    GameRecord,
    RivalrySimulator,
    games_to_binary,
    load_game_log_csv,
)
from repro.datasets.finance import (
    Regime,
    SyntheticSecurity,
    dow_jones_spec,
    ibm_spec,
    load_prices_csv,
    prices_to_binary,
    sp500_spec,
)

__all__ = [
    "GameRecord",
    "RivalrySimulator",
    "games_to_binary",
    "load_game_log_csv",
    "Regime",
    "SyntheticSecurity",
    "dow_jones_spec",
    "sp500_spec",
    "ibm_spec",
    "prices_to_binary",
    "load_prices_csv",
]
