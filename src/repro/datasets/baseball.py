"""Synthetic Yankees-Red Sox rivalry (substitute for baseball-reference.com).

The paper encodes 2086 head-to-head games (1901-2011, 54.27% Yankee wins)
as a binary string and mines the dominance periods of Table 3.  We cannot
ship that game log, so :class:`RivalrySimulator` reconstructs a
statistically equivalent one:

* a season calendar places 2086 games across 1901-2011 (April-September),
* the five Table 3 windows are planted with their *exact* game and win
  counts (204/155, 39/5, 27/4, 35/7, 42/34), anchored at their real start
  dates, the wins spread near-evenly through the window (the real eras
  were sustained dominance, not a single hot burst -- even spreading
  makes the whole window, not a random sub-burst, the significant
  region, which is what Table 3 reports),
* the remaining games receive the remaining wins (1132 total) by a
  stratified permutation (exact share per ~25-game block, random inside
  each block) so that background drift stays bounded and the planted
  windows, not synthetic noise, carry the signal.

Because X² is a function of window length, window counts and the global
win ratio only -- all planted exactly -- the five windows score the same
X² against this reconstruction as against the real log, and the mining
comparison of Table 4 carries over.  Users with the real data can load it
through :func:`load_game_log_csv` and run the identical pipeline.
"""

from __future__ import annotations

import csv
import datetime as dt
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.model import BernoulliModel
from repro.datasets._plant import spread_positions, stratified_fill
from repro.generators.base import resolve_rng

__all__ = [
    "GameRecord",
    "PlantedWindow",
    "RivalrySimulator",
    "load_game_log_csv",
    "games_to_binary",
]

#: Totals reported in §7.5.1.
TOTAL_GAMES = 2086
TEAM_A_WINS = 1132  # Yankees
FIRST_SEASON = 1901
LAST_SEASON = 2011

#: The five dominance windows of Table 3: (start date, games, team-A wins).
TABLE3_WINDOWS: tuple[tuple[dt.date, int, int], ...] = (
    (dt.date(1924, 4, 17), 204, 155),  # Yankees 75.98%
    (dt.date(1911, 9, 5), 39, 5),      # Red Sox era, Yankees 12.82%
    (dt.date(1902, 5, 2), 27, 4),      # Yankees 14.81%
    (dt.date(1972, 2, 8), 35, 7),      # Yankees 20.00%
    (dt.date(1960, 7, 10), 42, 34),    # Yankees ~81%
)


@dataclass(frozen=True)
class GameRecord:
    """One game: calendar date and whether team A (the Yankees) won."""

    date: dt.date
    team_a_win: bool


@dataclass(frozen=True)
class PlantedWindow:
    """Ground truth for one planted dominance period."""

    start_index: int
    games: int
    wins: int

    @property
    def end_index(self) -> int:
        """One past the last game of the window."""
        return self.start_index + self.games

    @property
    def win_ratio(self) -> float:
        """Team-A win ratio inside the window."""
        return self.wins / self.games


def _season_schedule() -> list[dt.date]:
    """2086 game dates spread across the 1901-2011 seasons.

    Seasons get 18 or 19 games (April 15 - September 30, evenly spaced)
    so the total is exactly :data:`TOTAL_GAMES`.
    """
    seasons = LAST_SEASON - FIRST_SEASON + 1
    base, extra = divmod(TOTAL_GAMES, seasons)
    dates: list[dt.date] = []
    for offset in range(seasons):
        year = FIRST_SEASON + offset
        games = base + (1 if offset < extra else 0)
        start = dt.date(year, 4, 15)
        end = dt.date(year, 9, 30)
        span = (end - start).days
        for g in range(games):
            dates.append(start + dt.timedelta(days=(g * span) // max(1, games - 1)))
    return dates


class RivalrySimulator:
    """Seeded synthetic reconstruction of the rivalry game log.

    >>> sim = RivalrySimulator(seed=7)
    >>> len(sim.games)
    2086
    >>> sum(g.team_a_win for g in sim.games)
    1132
    >>> sim.binary_string().count("W")
    1132
    """

    def __init__(self, seed: int | np.random.Generator | None = 0) -> None:
        rng = resolve_rng(seed)
        dates = _season_schedule()
        n = len(dates)
        assert n == TOTAL_GAMES, f"schedule bug: {n} games"

        wins = np.zeros(n, dtype=bool)
        planted_mask = np.zeros(n, dtype=bool)
        windows: list[PlantedWindow] = []
        for start_date, games, window_wins in TABLE3_WINDOWS:
            start_index = next(
                i for i, d in enumerate(dates) if d >= start_date
            )
            window = np.arange(start_index, start_index + games)
            if planted_mask[window].any():
                raise RuntimeError("planted windows overlap; schedule bug")
            planted_mask[window] = True
            chosen = spread_positions(games, window_wins, float(rng.random()))
            wins[window[chosen]] = True
            windows.append(PlantedWindow(start_index, games, window_wins))

        remaining_positions = np.nonzero(~planted_mask)[0]
        remaining_wins = TEAM_A_WINS - sum(w.wins for w in windows)
        background = stratified_fill(len(remaining_positions), remaining_wins, rng)
        wins[remaining_positions[background]] = True

        self._games = [GameRecord(d, bool(w)) for d, w in zip(dates, wins)]
        self._windows = sorted(windows, key=lambda w: w.start_index)

    @property
    def games(self) -> list[GameRecord]:
        """All games, chronologically."""
        return self._games

    @property
    def planted_windows(self) -> list[PlantedWindow]:
        """Ground-truth dominance windows, by start index."""
        return self._windows

    def binary_string(self) -> str:
        """The paper's encoding: 'W' when team A won, 'L' otherwise."""
        return "".join("W" if g.team_a_win else "L" for g in self._games)

    def model(self) -> BernoulliModel:
        """Null model from the overall win ratio (what the paper does)."""
        return BernoulliModel.from_string(self.binary_string(), alphabet="WL")

    def date_range(self, start: int, end: int) -> tuple[dt.date, dt.date]:
        """Calendar dates of the games at ``[start, end)``'s boundaries."""
        if not 0 <= start < end <= len(self._games):
            raise IndexError(f"invalid game range [{start}, {end})")
        return self._games[start].date, self._games[end - 1].date

    def window_summary(self, start: int, end: int) -> dict:
        """Paper-style row for Table 3: dates, games, wins, win ratio."""
        first, last = self.date_range(start, end)
        wins = sum(g.team_a_win for g in self._games[start:end])
        games = end - start
        return {
            "start": first.isoformat(),
            "end": last.isoformat(),
            "games": games,
            "wins": wins,
            "win_pct": 100.0 * wins / games,
        }


def load_game_log_csv(path: str | Path, winner_column: str = "winner",
                      team_a: str = "NYY") -> list[GameRecord]:
    """Load a real game log (``date,winner`` CSV) for the same pipeline.

    Rows must carry an ISO ``date`` column and a ``winner`` column equal
    to ``team_a`` when team A won.  Returned records are sorted by date.
    """
    records: list[GameRecord] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                GameRecord(
                    date=dt.date.fromisoformat(row["date"]),
                    team_a_win=row[winner_column] == team_a,
                )
            )
    records.sort(key=lambda record: record.date)
    return records


def games_to_binary(games: Sequence[GameRecord]) -> str:
    """Encode a game list as the paper's 'W'/'L' string."""
    return "".join("W" if g.team_a_win else "L" for g in games)
