"""Shared planting helpers for the synthetic datasets.

Two placement schemes:

* :func:`spread_positions` -- near-even (Bresenham) placement, used
  *inside* planted windows so the window as a whole, not a random hot
  burst within it, is the significant region.
* :func:`stratified_fill` -- a stratified permutation null for the
  *background*: every ~25-symbol block carries its exact share of
  successes (placed randomly within the block).  The marginal ratio is
  exact and local order is random, but cumulative drift is bounded by
  one block -- so background noise adjacent to a planted window cannot
  extend the mined interval far past the plant.  Real data backgrounds
  have sqrt(n) drift; bounding it makes the reproduction's planted X²
  values land near the paper's instead of overshooting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spread_positions", "stratified_fill"]


def spread_positions(slots: int, count: int, offset: float) -> np.ndarray:
    """``count`` near-evenly spaced indices in ``range(slots)``.

    ``offset`` in [0, 1) rotates the lattice so different seeds differ
    while keeping every gap within one slot of ``slots / count``.

    >>> spread_positions(10, 5, 0.0).tolist()
    [0, 2, 4, 6, 8]
    """
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count > slots:
        raise ValueError(f"cannot place {count} items in {slots} slots")
    positions = ((np.arange(count) + offset) * slots / count).astype(np.int64)
    return np.minimum(positions, slots - 1)


def stratified_fill(
    length: int,
    successes: int,
    rng: np.random.Generator,
    block: int = 25,
) -> np.ndarray:
    """Boolean array: ``successes`` ones over ``length`` slots, stratified.

    Block ``b`` receives its proportional share of the remaining ones
    (cumulative rounding, so the total is exact), shuffled within the
    block.

    >>> rng = np.random.default_rng(0)
    >>> filled = stratified_fill(100, 40, rng, block=10)
    >>> int(filled.sum())
    40
    >>> all(2 <= filled[i:i+10].sum() <= 6 for i in range(0, 100, 10))
    True
    """
    if not 0 <= successes <= length:
        raise ValueError(
            f"successes {successes} outside [0, {length}]"
        )
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block!r}")
    out = np.zeros(length, dtype=bool)
    ratio = successes / length if length else 0.0
    placed = 0
    for start in range(0, length, block):
        stop = min(start + block, length)
        target_cumulative = int(round(ratio * stop))
        want = min(max(target_cumulative - placed, 0), stop - start)
        # Never exceed the grand total (rounding guard on the last block).
        want = min(want, successes - placed)
        if stop == length:
            want = successes - placed
        if want:
            chosen = rng.choice(stop - start, size=want, replace=False)
            out[start + chosen] = True
            placed += want
    return out
