"""Synthetic securities (substitute for finance.yahoo.com daily closes).

The paper encodes each security's history as a binary string -- 1 when
the close rose, 0 otherwise -- estimates the up-probability from the
whole series, and mines significant runs (§7.5.2, Tables 5-6).  We
reconstruct each series as a log-price walk over a weekday calendar with
*planted drift regimes* at the periods Table 5 reports.  Each regime is
specified by the two quantities the paper actually publishes:

* ``target_x2`` -- the X² the window should score (Table 6 gives 25.22
  for the Dow's 1954-55 window and 22.21 for the S&P's 1973-74 window;
  windows without a published value get plausible lower targets), and
* ``target_change_pct`` -- the window's price change from Table 5.

From those we *derive* the planted up-day count (inverting
``X² = (Y - L p)² / (L p q)`` at ``p = 1/2``) and the per-day log move
that makes the planted up-surplus produce the target change.  Up-days
are spread near-evenly through the window -- the real eras were
sustained drifts, not single bursts -- so the mined substring is the
window itself rather than a random hot sub-burst.  Non-regime days are
fair-coin draws.

Users with real data can run the identical pipeline through
:func:`load_prices_csv` + :func:`prices_to_binary`.
"""

from __future__ import annotations

import csv
import datetime as dt
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.model import BernoulliModel
from repro.datasets._plant import spread_positions, stratified_fill
from repro.generators.base import resolve_rng

__all__ = [
    "Regime",
    "SecuritySpec",
    "SyntheticSecurity",
    "dow_jones_spec",
    "sp500_spec",
    "ibm_spec",
    "prices_to_binary",
    "load_prices_csv",
    "trading_calendar",
]


@dataclass(frozen=True)
class Regime:
    """A planted drift period between two calendar dates.

    ``target_x2`` fixes how statistically significant the window is;
    ``target_change_pct`` fixes the price change over it (negative for a
    bear period -- its sign also decides whether the up-day surplus is
    positive or negative).
    """

    start: dt.date
    end: dt.date
    target_x2: float
    target_change_pct: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"regime ends before it starts: {self}")
        if self.target_x2 <= 0.0:
            raise ValueError(f"target_x2 must be positive, got {self.target_x2!r}")
        if self.target_change_pct <= -100.0:
            raise ValueError(
                f"target_change_pct must be > -100, got {self.target_change_pct!r}"
            )
        if self.target_change_pct == 0:
            raise ValueError("target_change_pct must be non-zero")


@dataclass(frozen=True)
class SecuritySpec:
    """Blueprint of one synthetic security."""

    name: str
    first_day: dt.date
    n_days: int
    base_daily_move: float  # log-return magnitude on non-regime days
    regimes: tuple[Regime, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_days < 2:
            raise ValueError(f"n_days must be >= 2, got {self.n_days!r}")
        if not 0.0 < self.base_daily_move < 0.2:
            raise ValueError(
                f"base_daily_move should be a small log return, got "
                f"{self.base_daily_move!r}"
            )


def trading_calendar(first_day: dt.date, n_days: int) -> list[dt.date]:
    """``n_days`` consecutive weekdays starting at/after ``first_day``.

    A holiday-free Monday-Friday calendar -- adequate for the
    reproduction, where only day ordering matters.

    >>> days = trading_calendar(dt.date(2000, 1, 1), 5)
    >>> [d.weekday() < 5 for d in days]
    [True, True, True, True, True]
    """
    days: list[dt.date] = []
    day = first_day
    while len(days) < n_days:
        if day.weekday() < 5:
            days.append(day)
        day += dt.timedelta(days=1)
    return days


class SyntheticSecurity:
    """A generated security: dates, prices, and the paper's binary encoding.

    >>> spec = dow_jones_spec()
    >>> security = SyntheticSecurity(spec, seed=1)
    >>> len(security.prices) == spec.n_days
    True
    >>> set(security.binary_string()) <= {"U", "D"}
    True
    """

    def __init__(
        self, spec: SecuritySpec, seed: int | np.random.Generator | None = 0
    ) -> None:
        rng = resolve_rng(seed)
        self._spec = spec
        self._dates = trading_calendar(spec.first_day, spec.n_days)
        n_moves = spec.n_days - 1  # move i is into calendar day i + 1

        ups = np.zeros(n_moves, dtype=bool)
        moves = np.full(n_moves, spec.base_daily_move)
        planted: list[tuple[int, int, Regime]] = []
        taken = np.zeros(n_moves, dtype=bool)
        for regime in spec.regimes:
            # Moves whose *arrival* day lies in the regime window.
            lo = self._first_move_on_or_after(regime.start)
            hi = self._first_move_on_or_after(regime.end + dt.timedelta(days=1))
            length = hi - lo
            if length <= 0:
                raise ValueError(
                    f"regime {regime.label or regime.start} falls outside "
                    f"the calendar of {spec.name}"
                )
            if taken[lo:hi].any():
                raise ValueError(
                    f"regime {regime.label or regime.start} overlaps another "
                    f"regime of {spec.name}"
                )
            taken[lo:hi] = True
            # Invert X² = (Y - L/2)² / (L/4) at p = 1/2 for the up count.
            surplus = math.sqrt(regime.target_x2 * length * 0.25)
            if surplus >= length / 2.0:
                raise ValueError(
                    f"regime {regime.label or regime.start}: target_x2 "
                    f"{regime.target_x2} is unreachable over {length} days"
                )
            sign = 1.0 if regime.target_change_pct > 0 else -1.0
            up_count = int(round(length / 2.0 + sign * surplus))
            window = np.zeros(length, dtype=bool)
            window[spread_positions(length, up_count, float(rng.random()))] = True
            ups[lo:hi] = window
            # Per-day log move that turns the planted surplus into the
            # target change: change = exp(2 * surplus_days * move) - 1.
            surplus_days = up_count - (length - up_count)
            log_change = math.log1p(regime.target_change_pct / 100.0)
            if surplus_days == 0:
                raise ValueError(
                    f"regime {regime.label or regime.start}: zero surplus "
                    f"cannot produce a price change"
                )
            moves[lo:hi] = abs(log_change / surplus_days)
            planted.append((lo, hi, regime))

        # Background: stratified fair-coin fill (exact share per block,
        # random within) so synthetic drift cannot out-signal the plants.
        background_positions = np.nonzero(~taken)[0]
        background = stratified_fill(
            len(background_positions), len(background_positions) // 2, rng
        )
        ups[background_positions[background]] = True

        log_returns = np.where(ups, moves, -moves)
        prices = np.empty(spec.n_days)
        prices[0] = 100.0
        prices[1:] = 100.0 * np.exp(np.cumsum(log_returns))
        self._prices = prices
        self._ups = ups
        self._planted = sorted(planted, key=lambda item: item[0])

    def _first_move_on_or_after(self, date: dt.date) -> int:
        """Index of the first move arriving on/after ``date`` (clamped)."""
        # Move i arrives on calendar day i + 1.
        for i, day in enumerate(self._dates[1:]):
            if day >= date:
                return i
        return len(self._dates) - 1

    @property
    def spec(self) -> SecuritySpec:
        """The generating blueprint."""
        return self._spec

    @property
    def dates(self) -> list[dt.date]:
        """The trading calendar."""
        return self._dates

    @property
    def prices(self) -> np.ndarray:
        """Synthetic daily closes."""
        return self._prices

    @property
    def planted_windows(self) -> list[tuple[int, int, Regime]]:
        """Ground truth: ``(start, end)`` binary-string ranges per regime."""
        return self._planted

    def binary_string(self) -> str:
        """'U' for an up day, 'D' for a down day (one symbol per move)."""
        return "".join("U" if up else "D" for up in self._ups)

    def model(self) -> BernoulliModel:
        """Null model from the overall up ratio (as the paper estimates it)."""
        return BernoulliModel.from_string(self.binary_string(), alphabet="UD")

    def date_range(self, start: int, end: int) -> tuple[dt.date, dt.date]:
        """Calendar dates spanned by binary-string positions ``[start, end)``.

        Position ``i`` describes the move into calendar day ``i + 1``, so
        the period runs from the close the first move departs from to the
        day the last move arrives at.
        """
        if not 0 <= start < end <= len(self._ups):
            raise IndexError(f"invalid range [{start}, {end})")
        return self._dates[start], self._dates[end]

    def percent_change(self, start: int, end: int) -> float:
        """Price change over binary positions ``[start, end)``, in percent."""
        if not 0 <= start < end <= len(self._ups):
            raise IndexError(f"invalid range [{start}, {end})")
        return 100.0 * (self._prices[end] / self._prices[start] - 1.0)

    def period_summary(self, start: int, end: int) -> dict:
        """Paper-style row for Table 5: dates and percent change."""
        first, last = self.date_range(start, end)
        return {
            "security": self._spec.name,
            "start": first.isoformat(),
            "end": last.isoformat(),
            "change_pct": self.percent_change(start, end),
        }


def _regime(start: str, end: str, x2: float, change: float, label: str) -> Regime:
    return Regime(
        start=dt.date.fromisoformat(start),
        end=dt.date.fromisoformat(end),
        target_x2=x2,
        target_change_pct=change,
        label=label,
    )


def dow_jones_spec() -> SecuritySpec:
    """Dow Jones-like series: 20906 days from 1928-10-01 (§7.5.2).

    The 1954-55 window targets X² = 25.22 -- the Dow optimum of Table 6;
    the other three windows are Table 5's Dow rows with lower targets.
    """
    return SecuritySpec(
        name="Dow Jones",
        first_day=dt.date(1928, 10, 1),
        n_days=20906,
        base_daily_move=0.008,
        regimes=(
            _regime("1954-02-24", "1955-12-06", 25.22, 68.10, "post-war boom"),
            _regime("1958-06-25", "1959-08-04", 17.0, 43.52, "1958 recovery"),
            _regime("1931-02-27", "1932-05-04", 20.0, -71.17, "Depression slide"),
            _regime("1929-09-19", "1929-11-14", 15.0, -41.27, "1929 crash"),
        ),
    )


def sp500_spec() -> SecuritySpec:
    """S&P 500-like series: 15600 days from 1950-01-03 (§7.5.2).

    The 1973-74 bear targets X² = 22.21 -- the S&P optimum of Table 6.
    """
    return SecuritySpec(
        name="S&P 500",
        first_day=dt.date(1950, 1, 3),
        n_days=15600,
        base_daily_move=0.008,
        regimes=(
            _regime("1953-09-15", "1955-09-20", 18.0, 97.07, "1950s bull"),
            _regime("1994-12-09", "1995-05-17", 14.0, 17.92, "1995 rally"),
            _regime("1973-10-26", "1974-11-21", 22.21, -39.79, "1973-74 bear"),
            _regime("2000-09-05", "2003-03-12", 16.0, -46.24, "dot-com bear"),
        ),
    )


def ibm_spec() -> SecuritySpec:
    """IBM-like series: 12517 days from 1962-01-02 (§7.5.2)."""
    return SecuritySpec(
        name="IBM",
        first_day=dt.date(1962, 1, 2),
        n_days=12517,
        base_daily_move=0.010,
        regimes=(
            _regime("1970-08-13", "1970-10-06", 12.0, 37.60, "1970 rebound"),
            _regime("1962-10-26", "1968-01-26", 14.0, 252.0, "1960s bull"),
            _regime("2005-03-31", "2005-04-20", 10.0, -21.20, "2005 slide"),
            _regime("1973-02-22", "1975-08-13", 20.0, -46.91, "1973-75 slide"),
        ),
    )


def prices_to_binary(prices: Sequence[float]) -> str:
    """Encode a close series as the paper's 'U'/'D' string.

    >>> prices_to_binary([100.0, 101.0, 100.5, 102.0])
    'UDU'
    """
    if len(prices) < 2:
        raise ValueError("need at least two prices to encode moves")
    out = []
    for previous, current in zip(prices, list(prices)[1:]):
        if not (math.isfinite(previous) and math.isfinite(current)):
            raise ValueError("prices must be finite")
        if previous <= 0:
            raise ValueError(f"prices must be positive, got {previous!r}")
        out.append("U" if current > previous else "D")
    return "".join(out)


def load_prices_csv(
    path: str | Path, date_column: str = "Date", close_column: str = "Close"
) -> tuple[list[dt.date], np.ndarray]:
    """Load real daily closes (yahoo-style CSV) for the same pipeline.

    Returns ``(dates, closes)`` sorted by date.
    """
    rows: list[tuple[dt.date, float]] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            rows.append(
                (dt.date.fromisoformat(row[date_column]), float(row[close_column]))
            )
    rows.sort(key=lambda pair: pair[0])
    dates = [d for d, _ in rows]
    closes = np.asarray([c for _, c in rows], dtype=np.float64)
    return dates, closes
