"""Null-model string generation: i.i.d. draws from a multinomial.

This is the paper's null hypothesis source (§1) and its default workload
(§7.1).  The geometric and harmonic strings of §7.1.2 are null strings of
a *skewed* model -- build those models with
:meth:`~repro.core.model.BernoulliModel.geometric` /
:meth:`~repro.core.model.BernoulliModel.harmonic` and draw from them here.
"""

from __future__ import annotations

import numpy as np

from repro._validation import ensure_positive_int
from repro.core.model import BernoulliModel
from repro.generators.base import resolve_rng

__all__ = ["generate_null", "generate_null_string"]


def generate_null(
    model: BernoulliModel, n: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Draw an encoded length-``n`` string from ``model``, i.i.d. per position.

    >>> model = BernoulliModel.uniform("ab")
    >>> codes = generate_null(model, 1000, seed=0)
    >>> len(codes), set(np.unique(codes)) <= {0, 1}
    (1000, True)
    """
    ensure_positive_int(n, "n")
    rng = resolve_rng(seed)
    return rng.choice(model.k, size=n, p=np.asarray(model.probabilities))


def generate_null_string(
    model: BernoulliModel, n: int, seed: int | np.random.Generator | None = None
) -> str:
    """Like :func:`generate_null` but decoded to a plain string.

    Requires a single-character alphabet.

    >>> model = BernoulliModel.uniform("ab")
    >>> text = generate_null_string(model, 12, seed=1)
    >>> len(text) == 12 and set(text) <= {"a", "b"}
    True
    """
    return model.decode_to_string(generate_null(model, n, seed))
