"""Sticky binary generator for the cryptology study (§7.4).

A (possibly deficient) random bit generator emits the *same* symbol as
the previous step with probability ``p`` and flips it with probability
``1 - p``.  An ideal generator has ``p = 0.5`` (the null model); ``p >
0.5`` introduces the adjacent-symbol correlation whose detection Table 2
demonstrates: the X²max of the generated string against the *fair-coin*
null grows with ``p``, so comparing a generator's X²max against the
``~ 2 ln n`` null benchmark exposes the bias.
"""

from __future__ import annotations

import numpy as np

from repro._validation import ensure_positive_int
from repro.generators.base import resolve_rng

__all__ = ["generate_correlated_binary"]


def generate_correlated_binary(
    n: int, same_probability: float, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Generate ``n`` bits where each repeats its predecessor w.p. ``same_probability``.

    The first bit is fair.  ``same_probability = 0.5`` reduces exactly to
    the i.i.d. fair-coin null model.

    >>> bits = generate_correlated_binary(1000, 0.9, seed=0)
    >>> flips = int((bits[1:] != bits[:-1]).sum())
    >>> flips < 250   # far fewer flips than a fair source's ~500
    True
    """
    ensure_positive_int(n, "n")
    if not 0.0 <= same_probability <= 1.0:
        raise ValueError(
            f"same_probability must be in [0, 1], got {same_probability!r}"
        )
    rng = resolve_rng(seed)
    # flip[i] == 1 means bit i differs from bit i-1; cumulative XOR turns
    # the flip sequence into the bit sequence (vectorised via mod-2 cumsum).
    flips = (rng.random(n) >= same_probability).astype(np.int64)
    flips[0] = int(rng.random() < 0.5)
    return np.cumsum(flips) % 2
