"""First-order Markov string generation (§7.1.2c).

The paper's Markov workload draws each character conditioned on its
predecessor with transition probability

``Pr[a_j | a_i]  proportional to  1 / 2^{(i - j) mod k}``,

a kernel that strongly favours repeating / cycling characters and hence
produces strings that are *not* from the memoryless null model.  Figure 4
shows the MSS scan running strictly faster on such strings than on null
strings of the same length (the §5.1 argument: higher X²max means bigger
skips); ``benchmarks/bench_fig4_nonnull.py`` reproduces that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import ensure_positive_int
from repro.generators.base import resolve_rng

__all__ = ["MarkovChain", "paper_markov_chain"]


@dataclass(frozen=True)
class MarkovChain:
    """A finite first-order Markov chain over ``k`` integer-coded states.

    ``transition[i, j]`` is ``Pr[next = j | current = i]``; rows must be
    probability vectors.  ``initial`` defaults to the stationary
    distribution so generated strings are stationary from the first
    character.
    """

    transition: np.ndarray
    initial: np.ndarray | None = None

    def __post_init__(self) -> None:
        matrix = np.asarray(self.transition, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"transition must be square, got shape {matrix.shape}")
        if matrix.shape[0] < 2:
            raise ValueError("need at least 2 states")
        if (matrix < 0).any():
            raise ValueError("transition probabilities must be non-negative")
        rows = matrix.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-9):
            raise ValueError(f"transition rows must sum to 1, got {rows}")
        object.__setattr__(self, "transition", matrix)
        if self.initial is not None:
            start = np.asarray(self.initial, dtype=np.float64)
            if start.shape != (matrix.shape[0],) or (start < 0).any():
                raise ValueError("initial must be a length-k probability vector")
            if not np.isclose(start.sum(), 1.0, atol=1e-9):
                raise ValueError("initial must sum to 1")
            object.__setattr__(self, "initial", start)

    @property
    def k(self) -> int:
        """Number of states."""
        return self.transition.shape[0]

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution, via the dominant left eigenvector.

        >>> chain = paper_markov_chain(2)
        >>> pi = chain.stationary_distribution()
        >>> bool(np.isclose(pi.sum(), 1.0))
        True
        """
        values, vectors = np.linalg.eig(self.transition.T)
        index = int(np.argmin(np.abs(values - 1.0)))
        stationary = np.real(vectors[:, index])
        stationary = np.abs(stationary)
        return stationary / stationary.sum()

    def generate(self, n: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
        """Generate an encoded length-``n`` string.

        >>> codes = paper_markov_chain(3).generate(100, seed=0)
        >>> len(codes)
        100
        """
        ensure_positive_int(n, "n")
        rng = resolve_rng(seed)
        start = self.initial if self.initial is not None else self.stationary_distribution()
        # Pre-draw uniforms and walk the per-state CDFs: ~20x faster than
        # calling rng.choice once per character.
        cdf = np.cumsum(self.transition, axis=1)
        uniforms = rng.random(n)
        out = np.empty(n, dtype=np.int64)
        state = int(rng.choice(self.k, p=start))
        out[0] = state
        for position in range(1, n):
            state = int(np.searchsorted(cdf[state], uniforms[position], side="right"))
            if state >= self.k:  # guard against u == 1.0 edge
                state = self.k - 1
            out[position] = state
        return out


def paper_markov_chain(k: int) -> MarkovChain:
    """The paper's transition kernel: ``Pr[a_j | a_i] ∝ 1 / 2^{(i-j) mod k}``.

    >>> chain = paper_markov_chain(4)
    >>> bool(chain.transition[0, 0] == chain.transition.max())
    True
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k!r}")
    weights = np.empty((k, k), dtype=np.float64)
    for i in range(k):
        for j in range(k):
            weights[i, j] = 2.0 ** -((i - j) % k)
    return MarkovChain(weights / weights.sum(axis=1, keepdims=True))
