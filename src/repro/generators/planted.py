"""Null strings with planted anomalous segments.

The paper motivates the substring (rather than whole-string) problem with
"an external event occurring in the middle of a string ... causing the
particular substring to deviate significantly from the expected
behavior" (§1).  This generator manufactures exactly that situation with
known ground truth: a background drawn from the null model, with chosen
windows re-drawn from different multinomials.  The detection tests and
the quickstart example use it to check that the miners actually recover
planted events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._validation import ensure_non_negative_int, ensure_positive_int, ensure_probability_vector
from repro.core.model import BernoulliModel
from repro.generators.base import resolve_rng

__all__ = ["PlantedSegment", "generate_with_planted"]


@dataclass(frozen=True)
class PlantedSegment:
    """An anomalous window: positions ``[start, start + length)`` drawn from
    ``probabilities`` instead of the background model."""

    start: int
    length: int
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        ensure_non_negative_int(self.start, "start")
        ensure_positive_int(self.length, "length")
        object.__setattr__(
            self, "probabilities", ensure_probability_vector(self.probabilities)
        )

    @property
    def end(self) -> int:
        """One past the last planted position."""
        return self.start + self.length

    def overlaps(self, other: "PlantedSegment") -> bool:
        """Whether two segments share any position."""
        return self.start < other.end and other.start < self.end


def generate_with_planted(
    model: BernoulliModel,
    n: int,
    segments: Sequence[PlantedSegment],
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw a null string from ``model`` and overwrite the planted windows.

    Segments must fit inside the string, must not overlap, and must use
    the same alphabet size as ``model``.

    >>> model = BernoulliModel.uniform("ab")
    >>> segment = PlantedSegment(start=100, length=50,
    ...                          probabilities=(0.95, 0.05))
    >>> codes = generate_with_planted(model, 300, [segment], seed=0)
    >>> int(codes[100:150].sum()) < 10   # planted window is almost all 'a'
    True
    """
    ensure_positive_int(n, "n")
    rng = resolve_rng(seed)
    ordered = sorted(segments, key=lambda s: s.start)
    for first, second in zip(ordered, ordered[1:]):
        if first.overlaps(second):
            raise ValueError(f"planted segments overlap: {first} and {second}")
    codes = rng.choice(model.k, size=n, p=np.asarray(model.probabilities))
    for segment in ordered:
        if segment.end > n:
            raise ValueError(
                f"segment {segment} extends past the string length {n}"
            )
        if len(segment.probabilities) != model.k:
            raise ValueError(
                f"segment {segment} has {len(segment.probabilities)} "
                f"probabilities but the model alphabet has {model.k}"
            )
        codes[segment.start : segment.end] = rng.choice(
            model.k, size=segment.length, p=np.asarray(segment.probabilities)
        )
    return codes
