"""Workload generators for the paper's experiments.

All generators take a ``seed`` (or a ``numpy.random.Generator``) and
return encoded integer arrays; pair them with the matching
:class:`~repro.core.model.BernoulliModel` to decode or to mine.

* :mod:`repro.generators.null` -- the memoryless Bernoulli null model
  (§7.1), uniform or arbitrary multinomial.
* :mod:`repro.generators.markov` -- first-order Markov strings with the
  paper's ``1 / 2^{(i - j) mod k}`` transition kernel (§7.1.2c).
* :mod:`repro.generators.correlated` -- the sticky binary generator of
  the cryptology study (§7.4): repeat the previous symbol with
  probability ``p``.
* :mod:`repro.generators.planted` -- null strings with planted anomalous
  segments (ground truth for detection tests and examples).

The geometric and harmonic/Zipf strings of §7.1.2(a, b) are null strings
drawn from the corresponding skewed models --
:meth:`BernoulliModel.geometric` and :meth:`BernoulliModel.harmonic`.
"""

from repro.generators.base import resolve_rng
from repro.generators.correlated import generate_correlated_binary
from repro.generators.markov import MarkovChain, paper_markov_chain
from repro.generators.null import generate_null, generate_null_string
from repro.generators.planted import PlantedSegment, generate_with_planted

__all__ = [
    "resolve_rng",
    "generate_null",
    "generate_null_string",
    "MarkovChain",
    "paper_markov_chain",
    "generate_correlated_binary",
    "PlantedSegment",
    "generate_with_planted",
]
