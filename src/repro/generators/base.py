"""Random-source plumbing shared by every generator."""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng"]


def resolve_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged, so callers can
    thread one source through a pipeline), an integer seed, or ``None``
    for OS entropy.

    >>> int(resolve_rng(7).integers(0, 10)) == int(resolve_rng(7).integers(0, 10))
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
