"""Structured JSON-lines logging for the serving stack.

Every interesting event in the service -- a request served, a worker
crash falling back in-process, a corrupt calibration entry on disk --
is emitted through one of these loggers as a flat dict of fields, in
one of two formats:

* ``json`` -- one JSON object per line (``{"ts": ..., "level": ...,
  "logger": ..., "event": ..., **fields}``), grep- and ``jq``-able,
  what ``repro-mss serve --log-format json`` selects for production;
* ``text`` -- the same fields as ``key=value`` pairs after a readable
  prefix, the default for a foreground terminal.

Deliberately *not* built on :mod:`logging`: the stdlib module's global
handler tree, level inheritance and lazy ``%``-formatting solve
problems this stack does not have, and its mutable process-global state
is exactly what the metrics registry avoids.  This is ~100 lines with
one global config, one lock around the stream, and no handler graph.

Default level is ``warning``: a library user who never calls
:func:`configure` sees crash/corruption warnings on stderr and nothing
else.  ``repro-mss serve`` configures ``info`` so the per-request
access log is emitted.
"""

from __future__ import annotations

import json
import sys
import threading
import time

__all__ = ["StructuredLogger", "configure", "get_logger"]

#: Severity order for level filtering.
_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Config:
    """The process-global logging configuration (format, level, stream)."""

    def __init__(self) -> None:
        self.format = "text"
        self.level = "warning"
        self.stream = None  # None -> sys.stderr at emit time
        self.lock = threading.Lock()


_CONFIG = _Config()


def configure(
    *,
    format: str | None = None,
    level: str | None = None,
    stream=None,
) -> None:
    """Set the global log format (``text``/``json``), level, and stream.

    Arguments left ``None`` keep their current value.  ``stream=None``
    (the initial state) writes to whatever ``sys.stderr`` is at emit
    time, so pytest's capture and shell redirection both work.

    >>> configure(level="error")
    >>> configure(level="warning")  # restore the default
    """
    if format is not None:
        if format not in ("text", "json"):
            raise ValueError(f"format must be 'text' or 'json', got {format!r}")
        _CONFIG.format = format
    if level is not None:
        if level not in _LEVELS:
            raise ValueError(
                f"level must be one of {sorted(_LEVELS)}, got {level!r}"
            )
        _CONFIG.level = level
    if stream is not None:
        _CONFIG.stream = stream


_LOGGERS: dict[str, "StructuredLogger"] = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(name: str) -> "StructuredLogger":
    """The structured logger called ``name`` (cached per name).

    >>> get_logger("repro.service").name
    'repro.service'
    """
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = StructuredLogger(name)
        return logger


class StructuredLogger:
    """Emit structured events at debug/info/warning/error levels.

    An event is a short machine-readable name (``"access"``,
    ``"worker_fallback"``, ``"disk_corrupt"``) plus keyword fields; the
    global :func:`configure` state decides format, level threshold and
    destination.

    Examples
    --------
    >>> import io
    >>> buffer = io.StringIO()
    >>> configure(format="json", level="info", stream=buffer)
    >>> get_logger("demo").info("access", status=200)
    >>> json.loads(buffer.getvalue())["event"]
    'access'
    >>> configure(format="text", level="warning", stream=sys.stderr)
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def debug(self, event: str, **fields) -> None:
        """Emit ``event`` at debug level."""
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        """Emit ``event`` at info level."""
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        """Emit ``event`` at warning level."""
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        """Emit ``event`` at error level."""
        self._emit("error", event, fields)

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _LEVELS[level] < _LEVELS[_CONFIG.level]:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
            **fields,
        }
        if _CONFIG.format == "json":
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            pairs = " ".join(
                f"{key}={value}" for key, value in fields.items()
            )
            line = f"[{level:7s}] {self.name} {event}" + (
                f" {pairs}" if pairs else ""
            )
        stream = _CONFIG.stream if _CONFIG.stream is not None else sys.stderr
        with _CONFIG.lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed stderr must never fail a request

    def __repr__(self) -> str:
        return f"StructuredLogger(name={self.name!r})"
