"""Request tracing: one span tree per request, across threads.

The serving stack hands a request through four execution contexts --
the asyncio event loop (parse/serialize), the micro-batcher queue, the
batcher's mining thread, and (with ``--workers``) shared-memory worker
processes.  A wall-clock number alone cannot say *where* a slow request
spent its time; a :class:`Trace` can: it is an append-only list of
named :class:`Span` intervals with parent links, built as the request
flows, rendered as a tree in ``GET /stats?trace=1``.

The canonical span tree for one ``POST /mine``::

    request
    ├─ parse          JSON decode + validation (event loop or offloaded)
    ├─ queue_wait     submit() -> the batch's mining thread picks it up
    ├─ batch_mine     the shared mine_documents pass (this batch)
    │  ├─ kernel      this request's share of kernel scan time
    │  ├─ shm_pack    corpus packing into shared memory   (shm only)
    │  └─ replay      compact-array match replay           (shm only)
    ├─ finalize       calibration + correction for this request
    └─ serialize      payload build + JSON encode

Two mechanisms cross the thread/process boundaries without changing
any engine call signature (fake engines in the test-suite subclass
``mine_documents`` and must keep working):

* the batcher carries the :class:`Trace` object itself inside its
  queue entries and records spans explicitly with :meth:`Trace.add`
  (safe from any thread -- span storage is lock-guarded);
* :func:`set_active_trace_ids` / :func:`active_trace_ids` pass the
  batch's trace ids through a :mod:`contextvars` variable so the
  shared-memory executor can stamp chunk descriptors without a new
  parameter threading through ``CorpusEngine.mine_documents``.

:class:`TraceRecorder` keeps two bounded ring buffers -- the most
recent traces and the slowest-over-threshold ones -- so a spike can be
diagnosed *after* it happened, from the still-running service.
"""

from __future__ import annotations

import contextlib
import contextvars
import copy
import threading
import time
import uuid
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Trace",
    "TraceRecorder",
    "active_trace",
    "active_trace_ids",
    "new_trace_id",
    "set_active_trace_ids",
    "valid_trace_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random UUID prefix).

    >>> len(new_trace_id())
    16
    """
    return uuid.uuid4().hex[:16]


#: Accepted shape for an *inbound* trace id: hex digits plus dashes so
#: W3C-style ids interoperate, bounded so a hostile header cannot bloat
#: logs or the trace rings.
_TRACE_ID_CHARS = frozenset("0123456789abcdefABCDEF-")


def valid_trace_id(value: object) -> bool:
    """Whether ``value`` is acceptable as an inbound ``X-Trace-Id``.

    The service *adopts* trace ids it did not mint (the router, or any
    upstream proxy, sends them on the wire), so the shape is validated
    before one lands in logs, metrics exemplars, or the trace rings:
    8-64 characters of hex digits and dashes.

    >>> valid_trace_id(new_trace_id())
    True
    >>> valid_trace_id("../etc/passwd")
    False
    """
    if not isinstance(value, str):
        return False
    if not 8 <= len(value) <= 64:
        return False
    return all(ch in _TRACE_ID_CHARS for ch in value)


@dataclass
class Span:
    """One named, timed interval inside a trace.

    ``started``/``ended`` are :func:`time.perf_counter` readings --
    meaningful only relative to the trace's own spans, which is all a
    span tree needs.  ``parent`` names the enclosing span (``None`` for
    the root).
    """

    name: str
    started: float
    ended: float
    parent: str | None = None
    #: Optional small JSON-ready annotations (docs count, chunk index).
    notes: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """The span's duration in seconds."""
        return max(0.0, self.ended - self.started)

    def to_dict(self) -> dict:
        """JSON-ready flat form (milliseconds, 3 decimal places)."""
        data = {
            "name": self.name,
            "ms": round(self.seconds * 1000.0, 3),
            "start_ms": round(self.started * 1000.0, 3),
        }
        if self.parent is not None:
            data["parent"] = self.parent
        if self.notes:
            data["notes"] = self.notes
        return data


class Trace:
    """The span tree of one request, safe to build from any thread.

    Spans are recorded either with the :meth:`span` context manager
    (times the ``with`` body) or with :meth:`add` (explicit
    start/end readings -- how the batcher back-fills queue-wait and
    per-request shares of a shared mining pass).  :meth:`finish` stamps
    the total duration; :meth:`tree` nests children under parents by
    name for the ``/stats?trace=1`` payload.

    Examples
    --------
    >>> trace = Trace("abc123")
    >>> with trace.span("parse"):
    ...     pass
    >>> trace.finish()
    >>> trace.tree()["trace_id"]
    'abc123'
    """

    def __init__(
        self,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        #: Span name in the *upstream* process this trace hangs under
        #: (the router's ``X-Parent-Span`` header) -- ``None`` when this
        #: process is the edge.  Rendered in :meth:`tree` so assembly
        #: knows where to stitch.
        self.parent_span = parent_span
        #: Whether the id was adopted from the wire rather than minted.
        self.adopted = trace_id is not None
        #: Optional per-phase profiler sample counts, attached by the
        #: service to slow traces just before recording.
        self.profile: dict | None = None
        self.started = time.perf_counter()
        self.ended: float | None = None
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    @contextlib.contextmanager
    def span(self, name: str, parent: str | None = None, **notes):
        """Time the ``with`` body as a span called ``name``."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(
                name, started, time.perf_counter(), parent=parent, **notes
            )

    def add(
        self,
        name: str,
        started: float,
        ended: float,
        parent: str | None = None,
        **notes,
    ) -> Span:
        """Record a span from explicit :func:`time.perf_counter` readings."""
        span = Span(
            name=name, started=started, ended=ended, parent=parent,
            notes=dict(notes),
        )
        with self._lock:
            self._spans.append(span)
        return span

    def finish(self) -> None:
        """Stamp the trace's end time (idempotent)."""
        if self.ended is None:
            self.ended = time.perf_counter()

    @property
    def total_seconds(self) -> float:
        """Total wall-clock of the trace (up to now if unfinished)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return max(0.0, end - self.started)

    def spans(self) -> list[Span]:
        """A snapshot list of the recorded spans (insertion order)."""
        with self._lock:
            return list(self._spans)

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per top-level span name (histogram feed).

        Only parentless spans count -- a ``kernel`` child must not be
        double-billed on top of its enclosing ``batch_mine``.
        """
        totals: dict[str, float] = {}
        for span in self.spans():
            if span.parent is None:
                totals[span.name] = totals.get(span.name, 0.0) + span.seconds
        return totals

    def tree(self) -> dict:
        """JSON-ready nested span tree, children ordered by start time.

        Span times are re-based so the trace starts at 0 ms.
        """
        spans = sorted(self.spans(), key=lambda s: s.started)
        nodes = []
        by_name: dict[str, dict] = {}
        for span in spans:
            node = {
                "name": span.name,
                "ms": round(span.seconds * 1000.0, 3),
                "start_ms": round(
                    (span.started - self.started) * 1000.0, 3
                ),
            }
            if span.notes:
                node["notes"] = span.notes
            parent = by_name.get(span.parent) if span.parent else None
            if parent is not None:
                parent.setdefault("children", []).append(node)
            else:
                nodes.append(node)
            # Last span wins the name slot: children attach to the most
            # recently opened span of that name, which matches nesting.
            by_name[span.name] = node
        tree = {
            "trace_id": self.trace_id,
            "total_ms": round(self.total_seconds * 1000.0, 3),
            "spans": nodes,
        }
        if self.parent_span is not None:
            tree["parent_span"] = self.parent_span
        if self.profile is not None:
            tree["profile"] = self.profile
        return tree

    def __repr__(self) -> str:
        return (
            f"Trace(trace_id={self.trace_id!r}, "
            f"spans={len(self.spans())}, "
            f"total_ms={self.total_seconds * 1000.0:.1f})"
        )


#: The request trace active in this execution context, if any.
_ACTIVE_TRACE: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_active_trace", default=None
)

#: Trace ids of the requests whose documents the current mining pass is
#: carrying (a batch mixes requests, hence a tuple).
_ACTIVE_TRACE_IDS: contextvars.ContextVar[tuple[str, ...]] = (
    contextvars.ContextVar("repro_active_trace_ids", default=())
)


def active_trace() -> Trace | None:
    """The trace attached to the current context (``None`` outside one)."""
    return _ACTIVE_TRACE.get()


def set_active_trace(trace: Trace | None):
    """Attach ``trace`` to the current context; returns the reset token."""
    return _ACTIVE_TRACE.set(trace)


def active_trace_ids() -> tuple[str, ...]:
    """Trace ids of the batch being mined in this context (may be empty)."""
    return _ACTIVE_TRACE_IDS.get()


def set_active_trace_ids(trace_ids: tuple[str, ...]):
    """Declare the batch's trace ids for downstream executors.

    Called by the batcher inside its mining thread, *around* the
    ``mine_documents`` call; the shared-memory executor reads the value
    back with :func:`active_trace_ids` and stamps it onto its chunk
    descriptors.  Returns the token for ``ContextVar.reset``.
    """
    return _ACTIVE_TRACE_IDS.set(tuple(trace_ids))


def reset_active_trace_ids(token) -> None:
    """Undo a :func:`set_active_trace_ids` (explicit, thread-pool safe)."""
    _ACTIVE_TRACE_IDS.reset(token)


class TraceRecorder:
    """Bounded rings of finished traces: the recent and the slow.

    ``GET /stats?trace=1`` returns both ring snapshots.  ``recent``
    always holds the last ``capacity`` traces; ``slow`` holds the last
    ``capacity`` traces whose total exceeded ``slow_ms`` -- so one slow
    spike half an hour ago is still inspectable even after thousands of
    fast requests.

    Examples
    --------
    >>> recorder = TraceRecorder(capacity=2, slow_ms=0.0)
    >>> trace = Trace(); trace.finish(); recorder.record(trace)
    >>> len(recorder.snapshot()["recent"])
    1
    """

    def __init__(self, capacity: int = 16, slow_ms: float = 250.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.slow_ms = float(slow_ms)
        self._recent: list[dict] = []
        self._slow: list[dict] = []
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, trace: Trace) -> None:
        """Store one finished trace (rendered to its JSON tree)."""
        tree = trace.tree()
        with self._lock:
            self._recorded += 1
            self._recent.append(tree)
            if len(self._recent) > self.capacity:
                del self._recent[0]
            if tree["total_ms"] >= self.slow_ms:
                self._slow.append(tree)
                if len(self._slow) > self.capacity:
                    del self._slow[0]

    def get(self, trace_id: str) -> dict | None:
        """The most recent stored tree for ``trace_id`` (``None`` if gone).

        Serves ``GET /trace/<id>``.  The slow ring is searched first --
        it keeps traces long after the recent ring has cycled past them,
        which is exactly when someone comes asking about one.
        """
        with self._lock:
            for ring in (self._slow, self._recent):
                for tree in reversed(ring):
                    if tree.get("trace_id") == trace_id:
                        # Deep copy: the router mutates the returned
                        # tree while stitching shard spans into it.
                        return copy.deepcopy(tree)
        return None

    def snapshot(self) -> dict:
        """JSON-ready dump of both rings (the ``?trace=1`` payload)."""
        with self._lock:
            return {
                "recorded": self._recorded,
                "slow_ms_threshold": self.slow_ms,
                "recent": list(self._recent),
                "slow": list(self._slow),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TraceRecorder(capacity={self.capacity}, "
                f"recorded={self._recorded}, slow={len(self._slow)})"
            )
