"""Head-based trace sampling and the JSON-lines trace sink.

The in-memory :class:`~repro.obs.tracing.TraceRecorder` rings are small
by design -- they answer "what just happened" from a live process.  Two
gaps remain once the fleet is real:

* **Volume.**  At production request rates, recording every trace tree
  is wasted work.  :class:`TraceSampler` makes the classic head-based
  decision -- keep a fraction ``rate`` of traces -- but *deterministically
  from the trace id*, so the router and every shard it proxied to reach
  the same verdict for the same request without coordinating.  Requests
  that errored, timed out, or ran slow are always kept: those are the
  traces someone will come looking for.

* **Durability.**  The rings die with the process.  :class:`TraceSink`
  appends each kept trace tree as one JSON line (``--trace-log PATH``),
  so a crash post-mortem still has the traces that led up to it, and CI
  can upload the file as a failure artifact.

Both classes are safe to call from any thread.
"""

from __future__ import annotations

import hashlib
import json
import threading

__all__ = ["TraceSampler", "TraceSink"]

#: Denominator for the deterministic hash -> [0, 1) mapping (8 hex chars).
_HASH_SPACE = float(1 << 32)


class TraceSampler:
    """Deterministic head-based sampling keyed on the trace id.

    ``rate`` is the fraction of traces kept, in ``[0, 1]``.  The
    decision hashes the trace id (sha256, first 4 bytes) into ``[0, 1)``
    and keeps ids that land under ``rate`` -- so every process that sees
    the same ``X-Trace-Id`` samples it the same way, and a fleet-wide
    trace is either assembled everywhere or nowhere.

    :meth:`keep` layers the always-keep rules on top: errors (HTTP
    status >= 400, which covers 504 deadline expiries) and slow requests
    bypass the rate entirely.

    Examples
    --------
    >>> TraceSampler(1.0).sampled("deadbeefdeadbeef")
    True
    >>> TraceSampler(0.0).keep("deadbeefdeadbeef", status=504, total_ms=1.0,
    ...                        slow_ms=250.0)
    True
    """

    def __init__(self, rate: float = 1.0) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate!r}")
        self.rate = rate

    def sampled(self, trace_id: str) -> bool:
        """The pure rate decision for ``trace_id`` (no always-keep rules)."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(trace_id.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:4], "big") / _HASH_SPACE
        return draw < self.rate

    def keep(
        self,
        trace_id: str,
        *,
        status: int,
        total_ms: float,
        slow_ms: float,
    ) -> bool:
        """Whether to record this finished trace.

        Errors (``status >= 400``) and slow traces
        (``total_ms >= slow_ms``) are always kept; everything else is
        subject to the sampling rate.
        """
        if status >= 400:
            return True
        if total_ms >= slow_ms:
            return True
        return self.sampled(trace_id)

    def __repr__(self) -> str:
        return f"TraceSampler(rate={self.rate})"


class TraceSink:
    """Append-only JSON-lines file of kept trace trees.

    One :meth:`write` appends one compact JSON object (the
    :meth:`Trace.tree() <repro.obs.tracing.Trace.tree>` rendering) and a
    newline, under a lock, flushing each line so a crash loses at most
    the line being written.  Failures to write are counted, never
    raised: tracing must not take down serving.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "traces.jsonl")
    >>> sink = TraceSink(path)
    >>> sink.write({"trace_id": "abc", "total_ms": 1.0, "spans": []})
    >>> sink.close(); sink.written
    1
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.written = 0
        self.errors = 0
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def write(self, tree: dict) -> None:
        """Append one trace tree as a JSON line (errors counted, not raised)."""
        try:
            line = json.dumps(tree, separators=(",", ":"), sort_keys=True)
        except (TypeError, ValueError):
            with self._lock:
                self.errors += 1
            return
        with self._lock:
            if self._file.closed:
                self.errors += 1
                return
            try:
                self._file.write(line + "\n")
                self._file.flush()
                self.written += 1
            except OSError:
                self.errors += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if not self._file.closed:
                try:
                    self._file.close()
                except OSError:
                    self.errors += 1

    def __repr__(self) -> str:
        return (
            f"TraceSink(path={self.path!r}, written={self.written}, "
            f"errors={self.errors})"
        )
