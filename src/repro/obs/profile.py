"""Continuous sampling profiler: stdlib-only, flamegraph-ready.

"Where did ``batch_mine`` go?" must be answerable on a *live* shard
without restarting it under a tracing profiler.  This module does what
production Python profilers (py-spy, Austin) do, minus the native
machinery: a daemon thread wakes ~100 times a second, snapshots every
thread's current stack via :func:`sys._current_frames`, and appends the
collapsed stacks to a bounded ring.  Three read paths consume the ring:

* ``GET /debug/profile?seconds=N`` renders the last ``N`` seconds in
  Brendan Gregg's collapsed-stack text format -- pipe it straight into
  ``flamegraph.pl`` or speedscope;
* the service attaches :meth:`SamplingProfiler.phase_counts` to slow
  traces just before recording, so a slow trace carries the sampled
  phase breakdown (parse / pack / kernel / finalize / ...) alongside
  its span tree;
* :meth:`SamplingProfiler.overhead` reports the profiler's own
  measured duty cycle (sampling time over wall time), published in
  ``/stats`` and asserted under 5% by ``benchmarks/bench_service.py``.

Sampling bias caveats apply as usual: the sampler sees only what runs
while the GIL lets it look, and C-extension time shows up attributed to
the Python frame that called in.  Both are fine for the question this
answers -- relative time share across phases of the mining pipeline.
"""

from __future__ import annotations

import collections
import os.path
import sys
import threading
import time

__all__ = ["SamplingProfiler"]

#: Stack depth cap per sample: deeper frames are summarized away so a
#: runaway recursion cannot bloat the ring.
_MAX_DEPTH = 48

#: Ring capacity in samples (per-thread stacks count individually).
#: ~100 Hz x a handful of threads -> several minutes of history.
_MAX_SAMPLES = 120_000

#: Leaf function names that mean "this thread is parked, not working".
_IDLE_LEAVES = frozenset(
    {
        "wait",
        "select",
        "poll",
        "epoll",
        "accept",
        "_wait_for_tstate_lock",
        "_recv_bytes",
        "recv",
        "recv_into",
        "read",
        "readline",
        "sleep",
        "get",
        "acquire",
    }
)

#: Function-name markers mapping sampled frames onto the span phases of
#: the canonical ``POST /mine`` trace.  Scanned leaf-to-root; first hit
#: wins, so ``kernel`` (innermost) beats ``batch_mine`` (outermost).
_PHASE_MARKERS: tuple[tuple[str, frozenset[str]], ...] = (
    ("kernel", frozenset({"mine_batch", "_mine_span", "scan", "wavefront"})),
    ("shm_pack", frozenset({"pack_jobs", "_publish"})),
    ("replay", frozenset({"_documents_from_payload", "_aggregate"})),
    ("finalize", frozenset({"finalize", "calibrate", "threshold_for"})),
    ("batch_mine", frozenset({"mine_documents", "mine_and_finalize",
                              "run_jobs"})),
    ("parse", frozenset({"parse_mine_request", "_parse_body"})),
    ("serialize", frozenset({"payload", "response_bytes"})),
)


def _frame_label(frame) -> str:
    """``file:function`` label for one frame, collapsed-format safe."""
    code = frame.f_code
    base = os.path.basename(code.co_filename)
    if base.endswith(".py"):
        base = base[:-3]
    label = f"{base}:{code.co_name}"
    # The collapsed format delimits frames with ';' and the count with a
    # trailing space -- strip both from labels.
    return label.replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """A daemon thread sampling all Python stacks at a fixed interval.

    ``interval`` is the target seconds between wakeups (default 10 ms,
    ~100 Hz).  :meth:`start` spawns the thread; :meth:`stop` joins it.
    The profiler never samples its own thread, keeps at most
    ``max_samples`` recent samples, and measures its own duty cycle.

    Examples
    --------
    >>> profiler = SamplingProfiler(interval=0.005)
    >>> profiler.start()
    >>> time.sleep(0.05)
    >>> profiler.stop()
    >>> profiler.sample_count > 0
    True
    """

    def __init__(
        self,
        interval: float = 0.01,
        max_samples: int = _MAX_SAMPLES,
    ) -> None:
        interval = float(interval)
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.interval = interval
        self._samples: collections.deque[tuple[float, str, tuple[str, ...]]]
        self._samples = collections.deque(maxlen=int(max_samples))
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._busy_seconds = 0.0
        self._started_at: float | None = None
        self._stopped_wall = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start the sampling thread (no-op if already running)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sampling thread (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        if self._started_at is not None:
            self._stopped_wall += time.perf_counter() - self._started_at
            self._started_at = None
        self._thread = None

    @property
    def running(self) -> bool:
        """Whether the sampling thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.is_set():
            began = time.perf_counter()
            self._sample_once(began, own_ident)
            self._busy_seconds += time.perf_counter() - began
            self._stop.wait(self.interval)

    def _sample_once(self, now: float, own_ident: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        batch = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < _MAX_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root -> leaf, collapsed-format order
            batch.append(
                (now, names.get(ident, f"thread-{ident}"), tuple(stack))
            )
        with self._lock:
            self._samples.extend(batch)

    # -- read paths ---------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Number of samples currently in the ring."""
        with self._lock:
            return len(self._samples)

    def _window(
        self, seconds: float | None
    ) -> list[tuple[float, str, tuple[str, ...]]]:
        with self._lock:
            samples = list(self._samples)
        if seconds is None:
            return samples
        cutoff = time.perf_counter() - float(seconds)
        return [s for s in samples if s[0] >= cutoff]

    def collapsed(self, seconds: float | None = None) -> str:
        """The last ``seconds`` of samples in collapsed-stack text.

        One line per distinct stack: ``thread;frame;frame;... count``,
        sorted by descending count then lexically -- the exact input
        format of ``flamegraph.pl`` and speedscope.  ``seconds=None``
        renders the whole ring.
        """
        counts: collections.Counter[str] = collections.Counter()
        for _, thread_name, stack in self._window(seconds):
            key = ";".join(
                (thread_name.replace(";", ",").replace(" ", "_"), *stack)
            )
            counts[key] += 1
        lines = [
            f"{key} {count}"
            for key, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def phase_counts(self, seconds: float | None = None) -> dict:
        """Sample counts per mining phase over the recent window.

        Classifies each sample by scanning its frames leaf-to-root
        against :data:`_PHASE_MARKERS`; parked threads (idle leaf
        functions) count as ``idle``, everything else as ``other``.
        Attached to slow traces so their span trees carry a sampled
        "where the CPU actually was" breakdown.
        """
        counts: dict[str, int] = {}
        for _, _, stack in self._window(seconds):
            phase = self._classify(stack)
            counts[phase] = counts.get(phase, 0) + 1
        return {
            "samples": sum(counts.values()),
            "interval_seconds": self.interval,
            "phases": dict(
                sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
        }

    @staticmethod
    def _classify(stack: tuple[str, ...]) -> str:
        funcs = [label.rsplit(":", 1)[-1] for label in stack]
        for func in reversed(funcs):  # leaf -> root
            for phase, markers in _PHASE_MARKERS:
                if func in markers:
                    return phase
        if funcs and funcs[-1] in _IDLE_LEAVES:
            return "idle"
        return "other"

    def overhead(self) -> float:
        """Measured duty cycle: sampling seconds over wall seconds.

        This is the profiler's *self*-overhead upper bound -- the
        fraction of one core it spends walking stacks.  Returns 0.0
        before the first start.
        """
        wall = self._stopped_wall
        if self._started_at is not None:
            wall += time.perf_counter() - self._started_at
        if wall <= 0.0:
            return 0.0
        return self._busy_seconds / wall

    def summary(self) -> dict:
        """JSON-ready status block for ``GET /stats``."""
        return {
            "running": self.running,
            "interval_seconds": self.interval,
            "samples": self.sample_count,
            "overhead_ratio": round(self.overhead(), 6),
        }

    def __repr__(self) -> str:
        return (
            f"SamplingProfiler(interval={self.interval}, "
            f"running={self.running}, samples={self.sample_count})"
        )
