"""Observability for the mining stack: metrics, tracing, structured logs.

Three stdlib-only modules, threaded through every layer of the serving
system (HTTP front-end → micro-batcher → corpus engine → kernel
backends → shared-memory workers):

* :mod:`repro.obs.metrics` -- a thread-safe registry of counters,
  gauges and histograms; one :meth:`~repro.obs.metrics.MetricsRegistry.
  snapshot` feeds ``GET /stats`` and one :meth:`~repro.obs.metrics.
  MetricsRegistry.render_prometheus` feeds ``GET /metrics``, so both
  surfaces report the same numbers from one source of truth.  Worker
  processes accumulate into a picklable
  :class:`~repro.obs.metrics.LocalMetrics` returned piggybacked on
  chunk results.
* :mod:`repro.obs.tracing` -- per-request
  :class:`~repro.obs.tracing.Trace` span trees (parse → queue-wait →
  batch-mine → kernel → finalize → serialize), recorded into bounded
  recent/slow ring buffers (:class:`~repro.obs.tracing.TraceRecorder`)
  and served at ``GET /stats?trace=1``.
* :mod:`repro.obs.log` -- JSON-lines structured logging (access log,
  worker-crash/fallback events, calibration cache events), selectable
  via ``repro-mss serve --log-format json|text --log-level``.

See ``docs/ARCHITECTURE.md`` §6 for the metric catalog, the span tree
diagram, and the log-event reference.
"""

from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LocalMetrics,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import (
    Span,
    Trace,
    TraceRecorder,
    active_trace,
    active_trace_ids,
    new_trace_id,
    set_active_trace_ids,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LocalMetrics",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "Trace",
    "TraceRecorder",
    "active_trace",
    "active_trace_ids",
    "configure",
    "default_registry",
    "get_logger",
    "new_trace_id",
    "set_active_trace_ids",
]
