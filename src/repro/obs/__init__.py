"""Observability for the mining stack: metrics, tracing, logs, SLOs.

Six stdlib-only modules, threaded through every layer of the serving
system (router → HTTP front-end → micro-batcher → corpus engine →
kernel backends → shared-memory workers):

* :mod:`repro.obs.metrics` -- a thread-safe registry of counters,
  gauges and histograms; one :meth:`~repro.obs.metrics.MetricsRegistry.
  snapshot` feeds ``GET /stats`` and one :meth:`~repro.obs.metrics.
  MetricsRegistry.render_prometheus` feeds ``GET /metrics``, so both
  surfaces report the same numbers from one source of truth.  Worker
  processes accumulate into a picklable
  :class:`~repro.obs.metrics.LocalMetrics` returned piggybacked on
  chunk results.
* :mod:`repro.obs.tracing` -- per-request
  :class:`~repro.obs.tracing.Trace` span trees (parse → queue-wait →
  batch-mine → kernel → finalize → serialize), *distributed* across
  processes: the router injects ``X-Trace-Id``/``X-Parent-Span`` on
  proxied requests, the service adopts inbound ids, shm workers ship
  span intervals home on chunk results, and ``GET /trace/<id>``
  returns the assembled tree.  Bounded recent/slow rings
  (:class:`~repro.obs.tracing.TraceRecorder`) keep traces inspectable
  after the fact.
* :mod:`repro.obs.tracesink` -- head-based sampling
  (:class:`~repro.obs.tracesink.TraceSampler`, deterministic on the
  trace id so router and shards agree) and the JSON-lines
  :class:`~repro.obs.tracesink.TraceSink` behind ``--trace-log``.
* :mod:`repro.obs.profile` -- a continuous
  :class:`~repro.obs.profile.SamplingProfiler` (daemon thread walking
  ``sys._current_frames()`` ~100 Hz, measured self-overhead) serving
  collapsed stacks at ``GET /debug/profile`` and attaching per-phase
  sample counts to slow traces.
* :mod:`repro.obs.slo` -- latency/error objectives over sliding
  windows (:class:`~repro.obs.slo.SloTracker`, ``--slo
  p99:250ms,errors:0.1%``), multi-window ``repro_slo_burn_rate``
  gauges, and the enforced fast-burn condition that flips
  ``GET /healthz`` to ``degraded``.
* :mod:`repro.obs.log` -- JSON-lines structured logging (access log,
  worker-crash/fallback events, calibration cache events), selectable
  via ``repro-mss serve --log-format json|text --log-level``.

See ``docs/ARCHITECTURE.md`` §6 for the metric catalog, the distributed
trace lifecycle, and the log-event reference.
"""

from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LocalMetrics,
    MetricsRegistry,
    default_registry,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import (
    DEFAULT_SLO_SPEC,
    Objective,
    SloTracker,
    parse_slo_spec,
)
from repro.obs.tracesink import TraceSampler, TraceSink
from repro.obs.tracing import (
    Span,
    Trace,
    TraceRecorder,
    active_trace,
    active_trace_ids,
    new_trace_id,
    set_active_trace_ids,
    valid_trace_id,
)

__all__ = [
    "DEFAULT_SLO_SPEC",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LocalMetrics",
    "MetricsRegistry",
    "Objective",
    "SamplingProfiler",
    "SloTracker",
    "Span",
    "StructuredLogger",
    "Trace",
    "TraceRecorder",
    "TraceSampler",
    "TraceSink",
    "active_trace",
    "active_trace_ids",
    "configure",
    "default_registry",
    "get_logger",
    "new_trace_id",
    "parse_slo_spec",
    "set_active_trace_ids",
    "valid_trace_id",
]
