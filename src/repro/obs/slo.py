"""Service-level objectives: sliding windows, burn rates, fast-burn alarms.

PR 7 gave the stack health *mechanics* (breaker state, ``/healthz``);
this module gives it health *meaning*: user-visible objectives of the
form "99% of requests under 250 ms, error ratio under 0.1%"
(``--slo p99:250ms,errors:0.1%``), tracked over sliding windows the way
the SRE workbook prescribes.

The unit of alerting is the **burn rate**: the fraction of requests
violating an objective, divided by the objective's error budget (a
``p99`` latency target allows 1% violations, an ``errors:0.1%`` target
allows 0.1% failures).  Burn 1.0 means the budget is being consumed
exactly as provisioned; burn 14.4 over an hour of a 30-day budget eats
2% of the month in that hour.  :class:`SloTracker` computes the burn
per objective over *multiple* windows (fast + slow) and:

* publishes them as ``repro_slo_burn_rate{objective,window}`` gauges,
  refreshed at every ``/metrics`` scrape (present from the first scrape
  on, so ``tools/check_metrics.py`` can require the family);
* when ``enforce`` is on, reports a ``degraded`` verdict once *every*
  window burns past ``fast_burn_threshold`` (the multi-window AND
  suppresses blips) -- the service folds that verdict into
  ``GET /healthz``, where the router's health loop will eject the
  shard, exactly like a tripped worker-pool breaker.

Errors mean HTTP 5xx: a 4xx is the client's bill, not the service's
budget.  Latency observations include every terminal status, because a
504 that took 30 s is precisely the experience the objective describes.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass
from time import monotonic

__all__ = [
    "DEFAULT_SLO_SPEC",
    "Objective",
    "SloTracker",
    "parse_slo_spec",
]

#: Objectives tracked when the operator passes no ``--slo``: gauges are
#: always rendered (so dashboards and the metrics validator see the
#: family), but enforcement stays off unless explicitly requested.
DEFAULT_SLO_SPEC = "p99:250ms,errors:1%"

#: Sliding windows the burn rate is computed over: (label, seconds).
#: The first (shortest) is the "fast" window that drives enforcement.
DEFAULT_WINDOWS: tuple[tuple[str, float], ...] = (("1m", 60.0), ("10m", 600.0))

#: Page-worthy burn (SRE workbook's 1-hour/14.4x fast-burn pair).
DEFAULT_FAST_BURN = 14.4

_LATENCY_RE = re.compile(
    r"^p(?P<q>\d{1,2}(?:\.\d+)?):(?P<v>\d+(?:\.\d+)?)(?P<u>ms|s)$"
)
_ERRORS_RE = re.compile(r"^errors:(?P<v>\d+(?:\.\d+)?)(?P<pct>%?)$")


@dataclass(frozen=True)
class Objective:
    """One parsed objective: what counts as bad, and the budget for it.

    ``budget`` is the allowed bad-request fraction (``1 - quantile``
    for latency objectives, the target ratio for error objectives);
    the burn rate is ``bad_fraction / budget``.
    """

    label: str
    kind: str  # "latency" | "errors"
    budget: float
    threshold_seconds: float = 0.0  # latency objectives only

    def bad(self, seconds: float, is_error: bool) -> bool:
        """Whether one request observation violates this objective."""
        if self.kind == "latency":
            return seconds > self.threshold_seconds
        return is_error


def parse_slo_spec(spec: str) -> tuple[Objective, ...]:
    """Parse ``--slo`` syntax into :class:`Objective` tuples.

    Comma-separated terms; each is either ``pNN:<value>ms|s`` (latency
    quantile target) or ``errors:<ratio>[%]``.

    >>> [o.label for o in parse_slo_spec("p99:250ms,errors:0.1%")]
    ['p99:250ms', 'errors:0.1%']
    >>> parse_slo_spec("p99:250ms")[0].budget
    0.01
    """
    objectives: list[Objective] = []
    seen: set[str] = set()
    for raw in spec.split(","):
        term = raw.strip()
        if not term:
            continue
        match = _LATENCY_RE.match(term)
        if match:
            quantile = float(match.group("q")) / 100.0
            if not 0.0 < quantile < 1.0:
                raise ValueError(f"latency quantile out of range in {term!r}")
            value = float(match.group("v"))
            seconds = value / 1000.0 if match.group("u") == "ms" else value
            if seconds <= 0.0:
                raise ValueError(f"latency target must be > 0 in {term!r}")
            objective = Objective(
                label=term,
                kind="latency",
                budget=round(1.0 - quantile, 10),
                threshold_seconds=seconds,
            )
        else:
            match = _ERRORS_RE.match(term)
            if match is None:
                raise ValueError(
                    f"unrecognized SLO term {term!r} "
                    "(expected pNN:<value>ms|s or errors:<ratio>[%])"
                )
            ratio = float(match.group("v"))
            if match.group("pct"):
                ratio /= 100.0
            if not 0.0 < ratio <= 1.0:
                raise ValueError(f"error budget out of (0, 1] in {term!r}")
            objective = Objective(label=term, kind="errors", budget=ratio)
        if objective.label in seen:
            raise ValueError(f"duplicate SLO term {term!r}")
        seen.add(objective.label)
        objectives.append(objective)
    if not objectives:
        raise ValueError(f"empty SLO spec {spec!r}")
    return tuple(objectives)


class SloTracker:
    """Sliding-window burn-rate tracking over request observations.

    ``observe()`` is called once per terminal ``/mine`` response with
    the HTTP status and the request's wall seconds; everything else is
    derived.  ``enforce=False`` (the default tracker every service
    carries) computes and publishes burn rates but never degrades
    health; ``--slo`` builds one with ``enforce=True``.

    The clock is injectable for tests.

    Examples
    --------
    >>> tracker = SloTracker(parse_slo_spec("errors:1%"), enforce=True)
    >>> for _ in range(20): tracker.observe(500, 0.001)
    >>> tracker.degraded() is not None
    True
    """

    #: Ring bound on retained events; at 10k req/s this still spans the
    #: default fast window several times over.
    MAX_EVENTS = 65_536

    def __init__(
        self,
        objectives: tuple[Objective, ...] | None = None,
        *,
        windows: tuple[tuple[str, float], ...] = DEFAULT_WINDOWS,
        fast_burn_threshold: float = DEFAULT_FAST_BURN,
        min_events: int = 10,
        enforce: bool = False,
        clock=monotonic,
    ) -> None:
        self.objectives = tuple(
            objectives if objectives is not None
            else parse_slo_spec(DEFAULT_SLO_SPEC)
        )
        if not self.objectives:
            raise ValueError("SloTracker needs at least one objective")
        self.windows = tuple((str(label), float(secs)) for label, secs in windows)
        if not self.windows:
            raise ValueError("SloTracker needs at least one window")
        self.fast_burn_threshold = float(fast_burn_threshold)
        self.min_events = int(min_events)
        self.enforce = bool(enforce)
        self._clock = clock
        self._events: deque[tuple[float, float, bool]] = deque(
            maxlen=self.MAX_EVENTS
        )
        self._observed = 0
        self._lock = threading.Lock()

    def observe(self, status: int, seconds: float) -> None:
        """Record one terminal request: HTTP ``status``, wall ``seconds``."""
        event = (self._clock(), float(seconds), int(status) >= 500)
        with self._lock:
            self._events.append(event)
            self._observed += 1

    def _window_events(
        self, now: float, window_seconds: float
    ) -> list[tuple[float, float, bool]]:
        cutoff = now - window_seconds
        with self._lock:
            return [e for e in self._events if e[0] >= cutoff]

    def burn_rates(self) -> dict[str, dict[str, dict]]:
        """Burn per objective per window.

        ``{objective_label: {window_label: {"burn", "bad", "events"}}}``;
        an empty window burns 0.0 (no data is not an outage).
        """
        now = self._clock()
        per_window = {
            label: self._window_events(now, seconds)
            for label, seconds in self.windows
        }
        out: dict[str, dict[str, dict]] = {}
        for objective in self.objectives:
            rows: dict[str, dict] = {}
            for label, _ in self.windows:
                events = per_window[label]
                bad = sum(
                    1 for _, secs, err in events if objective.bad(secs, err)
                )
                total = len(events)
                ratio = (bad / total) if total else 0.0
                rows[label] = {
                    "burn": round(ratio / objective.budget, 4) if total else 0.0,
                    "bad": bad,
                    "events": total,
                }
            out[objective.label] = rows
        return out

    def degraded(self) -> str | None:
        """The fast-burn reason, or ``None`` while within budget.

        Fires only with ``enforce`` on, at least ``min_events`` in the
        fast window, and the burn past ``fast_burn_threshold`` in
        *every* configured window (the multi-window AND keeps one blip
        from ejecting a shard).
        """
        if not self.enforce:
            return None
        fast_label = self.windows[0][0]
        for objective_label, rows in self.burn_rates().items():
            fast = rows[fast_label]
            if fast["events"] < self.min_events:
                continue
            if all(
                row["burn"] >= self.fast_burn_threshold
                for row in rows.values()
            ):
                return (
                    f"slo fast burn: {objective_label} burning "
                    f"{fast['burn']:.1f}x budget over {fast_label} "
                    f"({fast['bad']}/{fast['events']} bad)"
                )
        return None

    def register(self, registry) -> None:
        """Create the gauge families (zeroed series) in ``registry``.

        Called once at service construction so every ``/metrics`` scrape
        -- including the very first -- renders the ``repro_slo_*``
        families that ``tools/check_metrics.py`` requires.
        """
        burn = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per objective per sliding window "
            "(1.0 = consuming budget exactly as provisioned)",
            labelnames=("objective", "window"),
        )
        for objective in self.objectives:
            for label, _ in self.windows:
                burn.labels(objective=objective.label, window=label).set(0.0)
        registry.gauge(
            "repro_slo_fast_burn_degraded",
            "1 while the enforced fast-burn condition holds (healthz "
            "reports degraded), else 0",
        ).set(0.0)

    def refresh(self, registry) -> None:
        """Recompute and publish the burn gauges (called at scrape time)."""
        burn = registry.gauge("repro_slo_burn_rate")
        for objective_label, rows in self.burn_rates().items():
            for window_label, row in rows.items():
                burn.labels(
                    objective=objective_label, window=window_label
                ).set(row["burn"])
        registry.gauge("repro_slo_fast_burn_degraded").set(
            1.0 if self.degraded() is not None else 0.0
        )

    def summary(self) -> dict:
        """JSON-ready status block for ``GET /stats``."""
        return {
            "objectives": [
                {
                    "objective": o.label,
                    "kind": o.kind,
                    "budget": o.budget,
                }
                for o in self.objectives
            ],
            "windows": {label: secs for label, secs in self.windows},
            "enforce": self.enforce,
            "fast_burn_threshold": self.fast_burn_threshold,
            "observed": self._observed,
            "burn_rates": self.burn_rates(),
            "degraded_reason": self.degraded(),
        }

    def __repr__(self) -> str:
        labels = ",".join(o.label for o in self.objectives)
        return (
            f"SloTracker(objectives=[{labels}], enforce={self.enforce}, "
            f"observed={self._observed})"
        )
