"""A stdlib-only metrics registry: counters, gauges, histograms.

This is the numeric half of :mod:`repro.obs` -- the single source of
truth every layer of the serving stack (HTTP front-end, micro-batcher,
corpus engine, shared-memory workers, calibration caches) reports its
counters and timings into.  The same registry backs both introspection
surfaces of :class:`~repro.service.app.MiningService`:

* ``GET /stats``  -- :meth:`MetricsRegistry.snapshot`, a JSON-ready
  dict (components read their own counters back out of the registry, so
  ``/stats`` can never drift from ``/metrics``);
* ``GET /metrics`` -- :meth:`MetricsRegistry.render_prometheus`, the
  Prometheus text exposition format (version 0.0.4), scrapeable by any
  standard collector and validated by ``tools/check_metrics.py``.

Design constraints, in order:

1. **No new dependencies.**  Pure stdlib (``threading`` locks around
   plain floats/lists); no ``prometheus_client``.
2. **Cheap on the hot path.**  One lock acquire + float add per event.
   Instrumentation granularity is per *request* or per *batch*, never
   per document or per scan row, so the measured service throughput
   overhead stays under the noise floor (``benchmarks/bench_service.py``
   asserts the service's own histogram agrees with client-side timing).
3. **No cross-process shared state.**  Worker processes accumulate into
   a picklable :class:`LocalMetrics` and return it piggybacked on their
   chunk results; the parent merges (:meth:`LocalMetrics.merge_into`).
   No shared memory, no extra IPC round-trips.

Histograms use fixed log-spaced buckets (:data:`LATENCY_BUCKETS`,
powers of two from 0.25 ms to ~2 min) so service latencies from a
sub-millisecond cache hit to a cold Monte-Carlo calibration land in
distinct buckets.  Each histogram additionally keeps a bounded ring of
recent raw observations, giving :meth:`Histogram.quantile` *exact*
p50/p99 over the recent window -- that is what ``/stats`` reports and
what ``bench_service.py`` cross-checks against client-side measurement.
"""

from __future__ import annotations

import bisect
import collections
import math
import threading
from dataclasses import dataclass, field

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LocalMetrics",
    "MetricsRegistry",
    "default_registry",
]

#: Fixed log-spaced latency buckets in seconds: 0.25 ms doubling up to
#: ~131 s.  Shared by every latency histogram so per-stage timings are
#: comparable bucket-for-bucket.
LATENCY_BUCKETS: tuple[float, ...] = tuple(0.00025 * 2**i for i in range(20))

#: Raw observations each histogram retains for exact recent-window
#: quantiles (p50/p99 in ``/stats``); bounded so memory stays O(1).
_RING_SIZE = 512

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    """Validate a Prometheus-legal metric/label name."""
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value (Prometheus accepts repr-style floats)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


class _Metric:
    """Common machinery of one metric family (name, help, labelled children).

    A family with no declared ``labelnames`` has exactly one anonymous
    child and its update methods apply to it directly; with labelnames,
    :meth:`labels` returns (creating on first use) the child for one
    label-value combination.  All mutation is lock-guarded and safe to
    call from any thread.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(_check_name(n) for n in labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Metric] = {}
        if self.labelnames:
            self._child_of = None
        else:
            self._child_of = self  # anonymous single child: itself

    def labels(self, **labelvalues: str):
        """The child metric for one label-value combination.

        >>> from repro.obs.metrics import Counter
        >>> c = Counter("demo_total", "demo", labelnames=("kind",))
        >>> c.labels(kind="x").inc(); c.labels(kind="x").value
        1.0
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help, **self._child_kwargs())
                self._children[key] = child
            return child

    def _child_kwargs(self) -> dict:
        return {}

    def _samples(self):
        """Yield ``(label_values, child)`` pairs in insertion order."""
        if not self.labelnames:
            yield (), self
            return
        with self._lock:
            items = list(self._children.items())
        yield from items

    def _label_str(self, values: tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, values)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class Counter(_Metric):
    """A monotonically increasing total (events, documents, errors).

    Examples
    --------
    >>> c = Counter("requests_total", "requests served")
    >>> c.inc(); c.inc(2); c.value
    3.0
    """

    kind = "counter"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount!r}")
        with self._lock:
            self._value += amount

    def reset(self, value: float = 0.0) -> None:
        """Force the counter to ``value``.

        Exists for the service layer's back-compat setters (tests
        manufacture throughput by assigning ``batcher.docs_total``);
        production code paths only ever :meth:`inc`.
        """
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value

    def snapshot_value(self):
        """JSON-ready value for :meth:`MetricsRegistry.snapshot`."""
        return self.value

    def render(self, lines: list[str]) -> None:
        """Append this family's exposition sample lines to ``lines``."""
        for values, child in self._samples():
            lines.append(
                f"{self.name}{self._label_str(values)} "
                f"{_format_value(child.value)}"
            )


class Gauge(_Metric):
    """A value that goes up and down (queue depth, uptime).

    Examples
    --------
    >>> g = Gauge("queue_depth", "queued documents")
    >>> g.set(7); g.value
    7.0
    """

    kind = "gauge"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value

    def snapshot_value(self):
        """JSON-ready value for :meth:`MetricsRegistry.snapshot`."""
        return self.value

    def render(self, lines: list[str]) -> None:
        """Append this family's exposition sample lines to ``lines``."""
        for values, child in self._samples():
            lines.append(
                f"{self.name}{self._label_str(values)} "
                f"{_format_value(child.value)}"
            )


class Histogram(_Metric):
    """A distribution over fixed buckets plus a recent-sample ring.

    The buckets feed the Prometheus exposition (cumulative
    ``_bucket{le=...}`` counts, ``_sum``, ``_count``); the bounded ring
    of raw observations feeds exact recent-window quantiles for
    ``/stats`` (:meth:`quantile`).

    Examples
    --------
    >>> h = Histogram("latency_seconds", "request latency")
    >>> h.observe(0.004); h.observe(0.010); h.count
    2
    >>> round(h.quantile(0.5), 3)
    0.01
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # final = +Inf
        self._sum = 0.0
        self._count = 0
        self._ring: collections.deque[float] = collections.deque(
            maxlen=_RING_SIZE
        )

    def _child_kwargs(self) -> dict:
        return {"buckets": self.buckets}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._ring.append(value)

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Exact quantile over the recent-sample ring (0.0 when empty).

        Recent-window, not lifetime: the ring keeps the last
        ``512`` observations, which is what a latency dashboard wants
        and what ``bench_service.py`` compares against client timing.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            window = sorted(self._ring)
        if not window:
            return 0.0
        return window[min(len(window) - 1, int(q * len(window)))]

    def snapshot_value(self):
        """JSON-ready dict for :meth:`MetricsRegistry.snapshot`."""
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        return {
            "count": total,
            "sum": total_sum,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": {
                _format_value(bound): count
                for bound, count in zip(
                    (*self.buckets, math.inf), counts
                )
                if count
            },
        }

    def render(self, lines: list[str]) -> None:
        """Append cumulative ``_bucket``/``_sum``/``_count`` lines."""
        for values, child in self._samples():
            with child._lock:
                counts = list(child._counts)
                total, total_sum = child._count, child._sum
            cumulative = 0
            for bound, count in zip((*child.buckets, math.inf), counts):
                cumulative += count
                extra = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket{self._label_str(values, extra)} "
                    f"{cumulative}"
                )
            lines.append(
                f"{self.name}_sum{self._label_str(values)} "
                f"{_format_value(total_sum)}"
            )
            lines.append(f"{self.name}_count{self._label_str(values)} {total}")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process-local set of metric families, one per name.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create: the
    first call fixes the family's help text, label names (and buckets);
    later calls return the same object, so independent modules can
    reference a shared metric by name alone.  Asking for an existing
    name with a different *type* is a hard error -- that is always a
    bug, never a feature.

    Each :class:`~repro.service.app.MiningService` owns a private
    registry (so two services in one process -- common in tests -- never
    mix numbers); library components default to the process-wide
    :func:`default_registry`.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("jobs_total", "jobs run").inc(3)
    >>> registry.snapshot()["jobs_total"]["value"]
    3.0
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(),
        buckets=LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        """The family called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """JSON-ready view of every family (the ``/stats`` source).

        Counters and gauges map to ``{"type", "value"}``; histograms to
        ``{"type", "count", "sum", "p50", "p99", "buckets"}`` (per
        label combination when labelled).
        """
        with self._lock:
            families = list(self._metrics.values())
        out: dict = {}
        for family in families:
            if family.labelnames:
                values = [
                    {
                        "labels": dict(zip(family.labelnames, key)),
                        **(
                            child.snapshot_value()
                            if isinstance(child, Histogram)
                            else {"value": child.snapshot_value()}
                        ),
                    }
                    for key, child in family._samples()
                ]
                out[family.name] = {"type": family.kind, "series": values}
            elif isinstance(family, Histogram):
                out[family.name] = {
                    "type": family.kind, **family.snapshot_value()
                }
            else:
                out[family.name] = {
                    "type": family.kind, "value": family.snapshot_value()
                }
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4.

        One ``# HELP`` / ``# TYPE`` pair per family followed by its
        samples; ends with a trailing newline as the format requires.
        Validated by ``tools/check_metrics.py`` (CI scrapes the smoke
        service run through it).
        """
        with self._lock:
            families = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for family in families:
            help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            family.render(lines)
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry(families={len(self._metrics)})"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry.

    Library components (engine, executors, calibration caches) report
    here unless a service hands them its own registry -- so `repro-mss
    batch` and ad-hoc engine use are observable without any wiring.
    """
    return _DEFAULT


@dataclass
class LocalMetrics:
    """A picklable, lock-free metrics accumulator for worker processes.

    Shared-memory mining workers cannot touch the parent's registry (no
    shared state by design), so each chunk task accumulates into one of
    these and returns it piggybacked on the chunk's result arrays; the
    parent calls :meth:`merge_into` while aggregating.  Counters add,
    histogram observations replay one by one -- merged numbers are
    exactly what the worker measured.

    Examples
    --------
    >>> local = LocalMetrics()
    >>> local.inc("docs_total", 3)
    >>> local.observe("kernel_seconds", 0.25)
    >>> registry = MetricsRegistry()
    >>> local.merge_into(registry, help={"docs_total": "docs mined"})
    >>> registry.counter("docs_total").value
    3.0
    """

    counters: dict[str, float] = field(default_factory=dict)
    observations: dict[str, list[float]] = field(default_factory=dict)

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the local counter called ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one local histogram observation under ``name``."""
        self.observations.setdefault(name, []).append(float(value))

    def merge_into(
        self, registry: MetricsRegistry, help: dict[str, str] | None = None
    ) -> None:
        """Fold this accumulator into ``registry`` (parent side)."""
        help = help or {}
        for name, amount in self.counters.items():
            registry.counter(name, help.get(name, "")).inc(amount)
        for name, values in self.observations.items():
            histogram = registry.histogram(name, help.get(name, ""))
            for value in values:
                histogram.observe(value)
