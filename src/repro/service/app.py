"""The async mining service: asyncio front-end over the corpus engine.

This is the north-star serving layer: a long-running process that keeps
every expensive thing warm -- the shared-memory worker pool
(:class:`~repro.engine.shm.SharedMemoryExecutor` with
``persistent=True``), the kernel backends, and the calibration null
distributions (:class:`~repro.service.store.DiskCalibrationCache`, so
even a *restart* stays warm) -- while a
:class:`~repro.service.batcher.MicroBatcher` coalesces concurrent
requests into batched kernel dispatch.

Endpoints (JSON over a minimal HTTP/1.1 subset, stdlib only):

* ``POST /mine`` -- mine one request (see
  :mod:`repro.service.protocol` for the schema).  Responses carry the
  full :meth:`~repro.engine.corpus.CorpusResult.payload` and are
  bit-identical to a direct ``CorpusEngine.run`` of the same request.
  Over capacity: ``429`` with a ``Retry-After`` hint.
* ``GET /healthz`` -- liveness: status, uptime, pool state; flips to
  ``degraded`` while the worker-pool breaker is non-closed or an
  *enforced* SLO fast-burn condition holds (see :mod:`repro.obs.slo`).
* ``GET /stats`` -- queue depth, batch fill, cache hit rates, executor
  diagnostics, and the full metrics snapshot; ``GET /stats?trace=1``
  additionally returns the recent/slow request span trees (see
  :mod:`repro.obs.tracing`).
* ``GET /metrics`` -- the same registry in Prometheus text exposition
  format (version 0.0.4), ready to scrape; includes the
  ``repro_slo_burn_rate`` gauges refreshed at scrape time.
* ``GET /trace/<id>`` -- the recorded span tree for one trace id (404
  once it has aged out of both rings).  Behind the router this is the
  per-shard half of fleet-wide trace assembly.
* ``GET /debug/profile?seconds=N`` -- the last ``N`` seconds of the
  continuous sampling profiler as collapsed-stack text
  (flamegraph-ready; see :mod:`repro.obs.profile`).

Observability is wired through a per-service
:class:`~repro.obs.metrics.MetricsRegistry` shared by the batcher, the
engine, the executor and the calibration cache; every request gets a
:class:`~repro.obs.tracing.Trace` whose id is echoed in the
``X-Trace-Id`` response header (and inside 4xx/5xx error bodies, so a
failing client can quote it).  A request arriving with a *valid*
``X-Trace-Id`` header (the router, or any upstream proxy, stamps one)
has its id **adopted** rather than replaced -- the one id follows the
request through every process it touches -- and an ``X-Parent-Span``
header marks which upstream span this process's trace hangs under.
Successful ``POST /mine`` bodies are **unchanged** -- byte-identical to
an engine run, traced or not, sampled or not.

Run it with ``repro-mss serve`` (see :mod:`repro.cli`), or in-process::

    service = MiningService(BernoulliModel.uniform("ab"), workers=2)
    with ServiceThread(service) as handle:
        client = ServiceClient(*handle.address)
        client.mine(text="ab" * 40)
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time

from repro.core.model import BernoulliModel
from repro.engine.calibration import CalibrationCache
from repro.engine.corpus import CorpusEngine
from repro.engine.deadline import Deadline, DeadlineExceeded
from repro.engine.executors import SerialExecutor, SharedMemoryExecutor
from repro.engine.shm import DEFAULT_BATCH_DOCS
from repro.kernels import get_backend
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SloTracker, parse_slo_spec
from repro.obs.tracesink import TraceSampler, TraceSink
from repro.obs.tracing import Trace, TraceRecorder, valid_trace_id
from repro.service.batcher import (
    MicroBatcher,
    RequestTooLarge,
    ServiceDraining,
    ServiceOverloaded,
)
from repro.service.protocol import (
    ProtocolError,
    parse_mine_request,
    read_request,
    response_bytes,
    text_response_bytes,
)

__all__ = ["MiningService", "ServiceThread"]

#: Endpoint label values for the HTTP metrics.  Unknown paths are
#: clamped to "other" so a scanner cannot inflate label cardinality;
#: ``/trace/<id>`` collapses to one "/trace" label for the same reason.
_KNOWN_ENDPOINTS = frozenset(
    {"/mine", "/healthz", "/stats", "/metrics", "/trace", "/debug/profile"}
)

#: Bounds on the ``GET /debug/profile?seconds=N`` window.
_PROFILE_WINDOW_MAX = 600.0


class MiningService:
    """A long-running mining service over one :class:`CorpusEngine`.

    Parameters
    ----------
    model:
        The service's default null model (requests may override it with
        an explicit ``alphabet``/``probs``).
    workers:
        Mining worker processes.  ``> 1`` builds a *persistent*
        :class:`~repro.engine.shm.SharedMemoryExecutor`: its process
        pool is spawned once (pre-warmed at :meth:`start`) and reused by
        every batch until :meth:`stop`.
    batch_docs:
        Micro-batch target size (documents per dispatched batch, and
        the engine's kernel batch size).
    max_pending_docs / linger_seconds / tenant_fair_share:
        Backpressure bound, coalescing window and per-tenant fair-share
        quota -- see :class:`~repro.service.batcher.MicroBatcher`.
    correction / alpha:
        Engine defaults applied when a request does not set its own.
    calibration:
        A :class:`~repro.engine.calibration.CalibrationCache` (typically
        the disk-backed :class:`~repro.service.store.
        DiskCalibrationCache`) for Monte-Carlo family-wise p-values;
        ``None`` keeps asymptotic p-values.
    backend:
        Kernel backend name applied to requests that do not pick their
        own (``repro-mss serve --backend``); ``None`` defers to
        ``REPRO_BACKEND`` / the registry default.
    default_timeout_ms:
        End-to-end deadline applied to requests that carry no
        ``timeout_ms`` of their own (``serve --default-timeout-ms``);
        ``None`` leaves such requests unbounded.  Expired requests are
        answered 504 with the trace id in the body.
    drain_timeout:
        Seconds :meth:`stop` waits for in-flight exchanges to flush
        their responses before dropping connections (``serve
        --drain-timeout``; previously hardcoded at 10).
    trace_sample:
        Head-based sampling rate in ``[0, 1]`` (``serve
        --trace-sample``): the fraction of traces recorded into the
        rings / sink.  Deterministic on the trace id, and errors, 504s
        and slow requests are always kept -- see
        :class:`~repro.obs.tracesink.TraceSampler`.
    trace_log:
        Optional path of a JSON-lines trace sink (``serve
        --trace-log``): every kept trace tree is appended, so traces
        survive the process.
    slo:
        Service-level objectives.  A spec string like
        ``"p99:250ms,errors:0.1%"`` (``serve --slo``) builds an
        *enforced* :class:`~repro.obs.slo.SloTracker` whose fast-burn
        condition degrades ``/healthz``; a prebuilt tracker is used
        as-is; ``None`` tracks default objectives for the
        ``repro_slo_*`` gauges without ever degrading health.
    engine:
        Escape hatch: a fully built engine to serve with (overrides
        ``workers``/``correction``/``alpha``/``calibration``).
    """

    def __init__(
        self,
        model: BernoulliModel | None = None,
        *,
        workers: int = 1,
        batch_docs: int = DEFAULT_BATCH_DOCS,
        max_pending_docs: int = 1024,
        linger_seconds: float = 0.002,
        tenant_fair_share: float = 1.0,
        correction: str = "bh",
        alpha: float = 0.05,
        calibration: CalibrationCache | None = None,
        backend: str | None = None,
        default_timeout_ms: int | None = None,
        drain_timeout: float = 10.0,
        trace_sample: float = 1.0,
        trace_log: str | None = None,
        slo: str | SloTracker | None = None,
        engine: CorpusEngine | None = None,
    ) -> None:
        if drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {drain_timeout!r}"
            )
        if engine is None:
            executor = (
                SharedMemoryExecutor(workers=workers, persistent=True)
                if workers > 1
                else SerialExecutor()
            )
            engine = CorpusEngine(
                executor=executor,
                calibration=calibration,
                correction=correction,
                alpha=alpha,
                batch_docs=batch_docs,
            )
        self.model = model
        self.backend = backend
        self.default_timeout_ms = default_timeout_ms
        self.drain_timeout = drain_timeout
        self.engine = engine
        # One registry for the whole service: the batcher, engine,
        # executor and calibration cache all record into it, so /stats
        # and GET /metrics describe the same numbers.  Fresh per service
        # (not the process default) so two services never mix counters.
        self.metrics = MetricsRegistry()
        engine.metrics = self.metrics
        if hasattr(engine.executor, "metrics"):
            engine.executor.metrics = self.metrics
        if engine.calibration is not None:
            engine.calibration.metrics = self.metrics
        self.traces = TraceRecorder()
        self.sampler = TraceSampler(trace_sample)
        self.trace_sink = TraceSink(trace_log) if trace_log else None
        if isinstance(slo, SloTracker):
            self.slo = slo
        elif slo is not None:
            self.slo = SloTracker(parse_slo_spec(slo), enforce=True)
        else:
            # Default tracker: the repro_slo_* gauges always render (and
            # tools/check_metrics.py can require them), but with
            # enforce=False the objectives never touch /healthz.
            self.slo = SloTracker(enforce=False)
        self.slo.register(self.metrics)
        # Continuous, ~100 Hz; started with the server in start() and
        # stopped with it.  Feeds GET /debug/profile and the per-phase
        # sample counts attached to slow traces.
        self.profiler = SamplingProfiler()
        self.batcher = MicroBatcher(
            engine,
            batch_docs=batch_docs,
            max_pending_docs=max_pending_docs,
            linger_seconds=linger_seconds,
            tenant_fair_share=tenant_fair_share,
            metrics=self.metrics,
        )
        self._log = get_logger("repro.service")
        self._http_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint and status code.",
            labelnames=("endpoint", "status"),
        )
        self._http_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "End-to-end HTTP request latency, by endpoint.",
            labelnames=("endpoint",),
        )
        self._stage_seconds = self.metrics.histogram(
            "repro_request_stage_seconds",
            "Per-stage seconds of traced mine requests.",
            labelnames=("stage",),
        )
        self._uptime_gauge = self.metrics.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the service bound its socket.",
        )
        self._queue_gauge = self.metrics.gauge(
            "repro_service_queue_depth_docs",
            "Documents currently queued in the micro-batcher.",
        )
        # Created at zero so the family renders in /metrics before the
        # first timeout (dashboards can alert on its rate from scrape 1).
        self._requests_timed_out = self.metrics.counter(
            "repro_requests_timed_out_total",
            "Mine requests answered 504 after their deadline passed.",
        )
        self._server: asyncio.base_events.Server | None = None
        self._started_at: float | None = None
        self.address: tuple[str, int] | None = None
        self._connections: set[asyncio.Task] = set()
        self._active_exchanges = 0
        self._draining = False

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind, warm the worker pool, start serving.

        ``port=0`` binds an ephemeral port.  Returns (and stores on
        :attr:`address`) the actual ``(host, port)`` pair.  A bind
        failure (port in use, bad host) releases everything started
        before it -- the batcher dispatcher and the warmed worker pool
        do not outlive a service that never served.  A stopped service
        cannot be restarted (its batcher and mining thread are gone):
        build a new :class:`MiningService` instead.
        """
        if self.batcher.closed:
            raise RuntimeError(
                "this MiningService has been stopped and cannot be "
                "restarted; build a new one"
            )
        await self.batcher.start()
        pool = getattr(self.engine.executor, "pool", None)
        if pool is not None:
            # Spawn worker processes now, off the request path.  (Before
            # binding: warm() races pool.ensure_started if a request
            # could arrive concurrently.)
            await asyncio.get_running_loop().run_in_executor(None, pool.warm)
        try:
            self._server = await asyncio.start_server(self._handle, host, port)
        except BaseException:
            await self.batcher.close()
            self.engine.close()
            raise
        self.profiler.start()
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        self._started_at = time.monotonic()
        return self.address

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release the pool.

        In-flight and already-queued requests complete and are answered;
        new submissions (and new requests arriving on parked keep-alive
        connections) are answered 503 with ``Connection: close`` while
        draining.  Idle keep-alive connections are then dropped, and
        finally the engine's persistent worker pool is shut down.  The
        flush wait is bounded by ``drain_timeout`` seconds.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.close()
        # The batcher has resolved every accepted request; wait for the
        # handlers to flush those responses to their sockets before
        # dropping connections (bounded, in case a peer stopped reading).
        deadline = time.monotonic() + self.drain_timeout
        while self._active_exchanges and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.profiler.stop()
        if self.trace_sink is not None:
            self.trace_sink.close()
        self.engine.close()

    def stats(self) -> dict:
        """JSON-ready service metrics (the ``GET /stats`` payload)."""
        executor = self.engine.executor
        kernel = get_backend(self.backend)
        data = {
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "batcher": self.batcher.stats(),
            "engine": {
                "executor": getattr(executor, "name", type(executor).__name__),
                "workers": getattr(executor, "workers", 1),
                "backend": kernel.name,
                # equals "backend" except when "native" degraded to its
                # numpy fallback (no compiler/artifact on this host)
                "backend_resolved": getattr(
                    kernel, "resolved_name", kernel.name
                ),
                "batch_docs": self.engine.batch_docs,
                "correction": self.engine.correction,
                "alpha": self.engine.alpha,
            },
            "slo": self.slo.summary(),
            "profiler": self.profiler.summary(),
            "tracing": {
                "sample_rate": self.sampler.rate,
                "recorded": self.traces.snapshot()["recorded"],
                "sink": (
                    {
                        "path": self.trace_sink.path,
                        "written": self.trace_sink.written,
                        "errors": self.trace_sink.errors,
                    }
                    if self.trace_sink is not None
                    else None
                ),
            },
            "metrics": self.metrics.snapshot(),
        }
        pool = getattr(executor, "pool", None)
        if pool is not None:
            data["engine"]["pool"] = {
                "started": pool.started,
                "starts": pool.starts,
                "persistent": getattr(executor, "persistent", False),
            }
        last_run = getattr(executor, "last_run_info", None)
        if last_run is not None:
            data["engine"]["last_run"] = {
                key: value
                for key, value in last_run.items()
                if key != "shm_names"
            }
        if self.engine.calibration is not None:
            data["calibration"] = self.engine.calibration.summary()
        return data

    def healthz(self) -> dict:
        """JSON-ready liveness payload (the ``GET /healthz`` body).

        ``status`` is ``"ok"`` while everything is healthy and
        ``"degraded"`` (with a ``reason``) while either the worker-pool
        circuit breaker is anything but closed -- the service still
        answers correctly, just slower (serial mining) -- or an
        *enforced* SLO objective is fast-burning its error budget
        (see :class:`~repro.obs.slo.SloTracker`; behind the router a
        degraded report ejects the shard from rotation, which is the
        point).  When the executor has a breaker its full
        :meth:`~repro.engine.supervisor.PoolSupervisor.status` rides
        along under ``"pool_breaker"``.
        """
        data = {
            "status": "ok",
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "queue_depth_docs": self.batcher.queue_depth_docs,
        }
        supervisor = getattr(self.engine.executor, "supervisor", None)
        if supervisor is not None:
            breaker = supervisor.status()
            data["pool_breaker"] = breaker
            if breaker["state"] != "closed":
                data["status"] = "degraded"
                data["reason"] = (
                    f"worker-pool breaker {breaker['state']}"
                    + (f": {breaker['reason']}" if breaker["reason"] else "")
                )
        slo_reason = self.slo.degraded()
        if slo_reason is not None:
            data["status"] = "degraded"
            data["reason"] = (
                f"{data['reason']}; {slo_reason}"
                if "reason" in data
                else slo_reason
            )
        return data

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        """Serve one (keep-alive) client connection.

        Connections register themselves so :meth:`stop` can first wait
        for busy exchanges to flush their responses, then cancel the
        idle ones parked between keep-alive requests.
        """
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    parsed = await read_request(reader, writer)
                except ProtocolError as exc:
                    writer.write(
                        response_bytes(
                            400, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                if self._draining:
                    # A parked keep-alive connection woke up mid-drain:
                    # refuse with Connection: close so the client (or a
                    # load balancer) moves on to another replica.
                    started = time.perf_counter()
                    response = response_bytes(
                        503,
                        {"error": "service is draining for shutdown"},
                        keep_alive=False,
                    )
                    self._count_request(target, response, started)
                    writer.write(response)
                    await writer.drain()
                    break
                self._active_exchanges += 1
                try:
                    started = time.perf_counter()
                    response = await self._route(method, target, headers, body)
                    self._count_request(target, response, started)
                    writer.write(response)
                    await writer.drain()
                finally:
                    self._active_exchanges -= 1
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # service shutdown dropped this idle connection
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _count_request(
        self, target: str, response: bytes, started: float
    ) -> None:
        """Record one served exchange into the HTTP metrics.

        The status code is read back off the serialized status line
        (``HTTP/1.1 NNN ...``) so every path through :meth:`_route` is
        counted identically; unknown endpoints share one ``other`` label
        to keep cardinality bounded (and ``/trace/<id>`` one "/trace").

        Terminal ``/mine`` outcomes additionally feed the SLO tracker:
        latency for every status, the 5xx flag for the error objectives.
        """
        path = target.split("?", 1)[0]
        if path.startswith("/trace/"):
            path = "/trace"
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        try:
            status = response[9:12].decode("ascii")
        except (IndexError, UnicodeDecodeError):  # pragma: no cover
            status = "???"
        elapsed = time.perf_counter() - started
        self._http_requests.labels(endpoint=endpoint, status=status).inc()
        self._http_seconds.labels(endpoint=endpoint).observe(elapsed)
        if endpoint == "/mine" and status.isdigit():
            self.slo.observe(int(status), elapsed)

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition 0.0.4.

        Point-in-time gauges (uptime, queue depth, breaker state, SLO
        burn rates) are refreshed at scrape time; everything else is
        already live in the registry.
        """
        self.slo.refresh(self.metrics)
        self._uptime_gauge.set(
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        self._queue_gauge.set(float(self.batcher.queue_depth_docs))
        supervisor = getattr(self.engine.executor, "supervisor", None)
        if supervisor is not None:
            self.metrics.gauge(
                "repro_pool_breaker_state",
                "Worker-pool circuit breaker state "
                "(0 closed, 1 open, 2 half-open)",
            ).set(supervisor.state_code())
        return self.metrics.render_prometheus()

    async def _route(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> bytes:
        """Dispatch one request to its endpoint; always returns a response."""
        path, _, query = target.partition("?")
        if path == "/healthz":
            if method != "GET":
                return response_bytes(405, {"error": "use GET"})
            return response_bytes(200, self.healthz())
        if path == "/stats":
            if method != "GET":
                return response_bytes(405, {"error": "use GET"})
            data = self.stats()
            if "trace=1" in query.split("&"):
                data["traces"] = self.traces.snapshot()
            return response_bytes(200, data)
        if path == "/metrics":
            if method != "GET":
                return response_bytes(405, {"error": "use GET"})
            return text_response_bytes(200, self.render_metrics())
        if path.startswith("/trace/"):
            if method != "GET":
                return response_bytes(405, {"error": "use GET"})
            return self._trace_lookup(path[len("/trace/"):])
        if path == "/debug/profile":
            if method != "GET":
                return response_bytes(405, {"error": "use GET"})
            return self._profile_dump(query)
        if path == "/mine":
            if method != "POST":
                return response_bytes(405, {"error": "use POST"})
            return await self._mine(headers, body)
        return response_bytes(404, {"error": f"no such endpoint {path!r}"})

    def _trace_lookup(self, trace_id: str) -> bytes:
        """The ``GET /trace/<id>`` body: one recorded span tree or 404."""
        if not valid_trace_id(trace_id):
            return response_bytes(
                400, {"error": "malformed trace id", "trace_id": trace_id[:64]}
            )
        tree = self.traces.get(trace_id)
        if tree is None:
            return response_bytes(
                404,
                {
                    "error": "trace not found (not sampled, or aged out "
                    "of the recent/slow rings)",
                    "trace_id": trace_id,
                },
            )
        return response_bytes(200, tree)

    def _profile_dump(self, query: str) -> bytes:
        """The ``GET /debug/profile`` body: collapsed stacks, plain text.

        ``?seconds=N`` selects the trailing window of the continuous
        sample ring (default 5 s, capped); because the profiler never
        stops, the answer is immediate -- no mid-request sampling wait.
        """
        seconds = 5.0
        for term in query.split("&"):
            key, _, value = term.partition("=")
            if key == "seconds" and value:
                try:
                    seconds = float(value)
                except ValueError:
                    return response_bytes(
                        400, {"error": f"bad seconds value {value!r}"}
                    )
        if not 0.0 < seconds <= _PROFILE_WINDOW_MAX:
            return response_bytes(
                400,
                {
                    "error": "seconds must be in "
                    f"(0, {_PROFILE_WINDOW_MAX:.0f}]"
                },
            )
        text = self.profiler.collapsed(seconds=seconds)
        return text_response_bytes(
            200, text, content_type="text/plain; charset=utf-8"
        )

    #: Bodies above this size are decoded and validated on a worker
    #: thread: json.loads plus the alphabet-membership encode pass over
    #: a many-megabyte corpus would otherwise stall every other
    #: connection sharing the event loop.
    _OFFLOAD_PARSE_BYTES = 256 * 1024

    async def _mine(self, headers: dict, body: bytes) -> bytes:
        """The ``POST /mine`` endpoint body.

        Every request gets a :class:`~repro.obs.tracing.Trace`; its id
        rides the ``X-Trace-Id`` header on all outcomes and inside the
        JSON body of error responses.  A request arriving with a valid
        ``X-Trace-Id`` header *adopts* that id (the router injected it;
        minting a fresh one here is exactly what made routed traces
        uncorrelatable), and ``X-Parent-Span`` names the upstream span
        this trace hangs under during fleet-wide assembly.  Successful
        bodies stay byte-identical to an untraced engine run.

        A request carrying ``timeout_ms`` (or inheriting the service's
        ``default_timeout_ms``) is stamped with a monotonic
        :class:`~repro.engine.deadline.Deadline` here; expiry anywhere
        along the pipeline -- at admission, while queued, or mid-mine --
        comes back as a 504 whose body carries the trace id.
        """
        inbound = headers.get("x-trace-id")
        parent_span = headers.get("x-parent-span")
        if inbound is not None and valid_trace_id(inbound):
            trace = Trace(
                inbound,
                parent_span=(
                    parent_span
                    if parent_span and len(parent_span) <= 64
                    else None
                ),
            )
        else:
            trace = Trace()

        def decode_and_validate():
            return parse_mine_request(
                json.loads(body),
                self.model,
                default_backend=self.backend,
                default_timeout_ms=self.default_timeout_ms,
            )

        parse_started = time.perf_counter()
        try:
            if len(body) > self._OFFLOAD_PARSE_BYTES:
                request = await asyncio.get_running_loop().run_in_executor(
                    None, decode_and_validate
                )
            else:
                request = decode_and_validate()
        except ProtocolError as exc:
            return self._error(trace, None, 400, {"error": str(exc)})
        except ValueError:
            return self._error(
                trace, None, 400, {"error": "body is not valid JSON"}
            )
        trace.add(
            "parse", parse_started, time.perf_counter(), bytes=len(body)
        )
        deadline = Deadline.from_timeout_ms(request.timeout_ms)
        try:
            submission = self.batcher.submit(
                request, trace=trace, deadline=deadline
            )
            if deadline is not None:
                # Hard backstop over the cooperative checks: even a
                # wedged mine thread cannot hold this client's socket
                # past its deadline (plus a grace second for the
                # batcher's own shedding to win the race normally).
                result = await asyncio.wait_for(
                    submission,
                    timeout=max(0.0, deadline.remaining()) + 1.0,
                )
            else:
                result = await submission
        except RequestTooLarge as exc:
            # Permanently too large -- retrying cannot cure this, so it
            # must not look like a 429.  (Raised synchronously by
            # submit, before the request is ever queued.)
            return self._error(trace, request, 413, {"error": str(exc)})
        except ServiceDraining as exc:
            return self._error(
                trace,
                request,
                503,
                {"error": str(exc)},
                keep_alive=False,
            )
        except ServiceOverloaded as exc:
            return self._error(
                trace,
                request,
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=(("Retry-After", str(exc.retry_after)),),
            )
        except (DeadlineExceeded, asyncio.TimeoutError) as exc:
            self._requests_timed_out.inc()
            detail = (
                str(exc)
                if isinstance(exc, DeadlineExceeded) and str(exc)
                else "deadline exceeded"
            )
            return self._error(
                trace,
                request,
                504,
                {"error": detail, "timeout_ms": request.timeout_ms},
            )
        except Exception as exc:  # mining failure: report, keep serving
            return self._error(
                trace, request, 500,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
        serialize_started = time.perf_counter()
        response = response_bytes(
            200,
            result.payload(),
            extra_headers=(("X-Trace-Id", trace.trace_id),),
        )
        trace.add("serialize", serialize_started, time.perf_counter())
        self._finish_request(trace, request, 200)
        return response

    def _error(
        self,
        trace,
        request,
        status: int,
        payload: dict,
        *,
        extra_headers=(),
        keep_alive: bool = True,
    ) -> bytes:
        """Serialize one error outcome, stamping the trace id into it."""
        payload = dict(payload)
        payload["trace_id"] = trace.trace_id
        response = response_bytes(
            status,
            payload,
            extra_headers=(
                ("X-Trace-Id", trace.trace_id),
                *extra_headers,
            ),
            keep_alive=keep_alive,
        )
        self._finish_request(trace, request, status)
        return response

    def _finish_request(self, trace, request, status: int) -> None:
        """Close out one traced request: histograms, rings, sink, log.

        The stage histograms and the access log always happen; whether
        the trace *tree* is kept (rings + sink) is the head-sampling
        decision -- errors and slow requests always, the rest at
        ``trace_sample``.  A kept slow trace additionally gets the
        profiler's per-phase sample counts over its own wall window
        attached before rendering.
        """
        trace.finish()
        stages = trace.stage_seconds()
        for stage, seconds in stages.items():
            self._stage_seconds.labels(stage=stage).observe(seconds)
        total_ms = trace.total_seconds * 1000.0
        if self.sampler.keep(
            trace.trace_id,
            status=status,
            total_ms=total_ms,
            slow_ms=self.traces.slow_ms,
        ):
            if total_ms >= self.traces.slow_ms and self.profiler.running:
                trace.profile = self.profiler.phase_counts(
                    seconds=max(1.0, trace.total_seconds)
                )
            self.traces.record(trace)
            if self.trace_sink is not None:
                self.trace_sink.write(trace.tree())
        self._log.info(
            "access",
            trace_id=trace.trace_id,
            status=status,
            docs=request.docs if request is not None else 0,
            tenant=request.tenant_key if request is not None else None,
            spec=request.spec_hash if request is not None else None,
            queue_ms=round(stages.get("queue_wait", 0.0) * 1000.0, 3),
            mine_ms=round(stages.get("batch_mine", 0.0) * 1000.0, 3),
            total_ms=round(trace.total_seconds * 1000.0, 3),
        )

    async def serve_forever(
        self, host: str = "127.0.0.1", port: int = 8765, on_bound=None
    ) -> None:
        """Start and serve until cancelled; shuts down gracefully.

        ``on_bound``, when given, is called with the actual ``(host,
        port)`` pair once the socket is bound -- the only way to learn
        the real port of an ephemeral (``port=0``) bind.

        SIGTERM (what ``docker stop`` / systemd send) triggers the same
        graceful drain as cancellation: accepted requests are answered
        before the process exits.  SIGINT is left to the asyncio runner
        (Ctrl-C in a foreground ``repro-mss serve``).
        """
        bound = await self.start(host, port)
        if on_bound is not None:
            on_bound(bound)
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        sigterm_installed = False
        try:
            loop.add_signal_handler(signal.SIGTERM, task.cancel)
            sigterm_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # platforms/loops without signal-handler support
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if sigterm_installed:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(signal.SIGTERM)
            await self.stop()

    def run(
        self, host: str = "127.0.0.1", port: int = 8765, on_bound=None
    ) -> None:
        """Blocking convenience used by ``repro-mss serve``.

        Serves until interrupted (Ctrl-C), then drains gracefully;
        ``on_bound`` reports the actual bound address (see
        :meth:`serve_forever`).
        """
        try:
            asyncio.run(self.serve_forever(host, port, on_bound=on_bound))
        except KeyboardInterrupt:
            pass

    def __repr__(self) -> str:
        return (
            f"MiningService(model={self.model!r}, engine={self.engine!r}, "
            f"address={self.address!r})"
        )


class ServiceThread:
    """Run a :class:`MiningService` on a background thread.

    The harness tests, benchmarks and examples use to serve and call
    from the same process: enter the context to get a live service (its
    bound address on :attr:`address`), exit to drain and stop it.

    Examples
    --------
    >>> service = MiningService(BernoulliModel.uniform("ab"))
    >>> with ServiceThread(service) as handle:
    ...     bound_port = handle.address[1]
    >>> bound_port > 0
    True
    """

    def __init__(
        self,
        service: MiningService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        startup_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.startup_timeout = startup_timeout
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServiceThread":
        """Start the service thread; blocks until the port is bound."""
        started = threading.Event()

        def runner() -> None:
            async def main() -> None:
                self._stop_event = asyncio.Event()
                try:
                    self.address = await self.service.start(
                        self.host, self.port
                    )
                except BaseException as exc:
                    self._startup_error = exc
                    started.set()
                    return
                started.set()
                await self._stop_event.wait()
                await self.service.stop()

            self._loop = asyncio.new_event_loop()
            try:
                self._loop.run_until_complete(main())
            finally:
                self._loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-service", daemon=True
        )
        self._thread.start()
        if not started.wait(self.startup_timeout):
            raise TimeoutError("service did not start in time")
        if self._startup_error is not None:
            self._thread.join(self.startup_timeout)
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        """Drain and stop the service, then join the thread."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(self.startup_timeout)

    def __repr__(self) -> str:
        return f"ServiceThread(address={self.address!r})"
