"""A blocking stdlib client for the mining service.

:class:`ServiceClient` wraps one keep-alive ``http.client`` connection
to a running service (``repro-mss serve`` or an in-process
:class:`~repro.service.app.ServiceThread`).  It exists so tests,
benchmarks and examples never hand-roll HTTP: :meth:`ServiceClient.mine`
takes the same vocabulary as :class:`~repro.engine.jobs.JobSpec` and
returns the decoded :meth:`~repro.engine.corpus.CorpusResult.payload`
dict.

Error mapping: HTTP 429 raises :class:`ServiceOverloadedError` carrying
the server's ``Retry-After`` hint; every other non-2xx status raises
:class:`ServiceError` with the server's error message.  A dropped
keep-alive connection is re-established once per call (and when that
fresh connection fails too, the raised error is chained to the
original failure).

Every exchange records the server's ``X-Trace-Id`` on
:attr:`ServiceClient.last_trace_id` (errors carry it too, on
:attr:`ServiceError.trace_id`), and :meth:`ServiceClient.trace` pulls
the span tree for it from ``GET /trace/<id>`` -- against a router this
is the assembled fleet-wide tree.

:meth:`ServiceClient.mine` additionally takes ``retries=N``: capped
exponential backoff with deterministic jitter around transient
failures -- a 429 sleeps the server's ``Retry-After``, a 503 or a
connection-level error sleeps ``backoff_base * 2**attempt`` (jittered,
capped at ``backoff_cap``).  Mining is idempotent (pure function of
the request), so retrying a connection that died mid-call is safe.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import time

__all__ = ["ServiceClient", "ServiceError", "ServiceOverloadedError"]


class ServiceError(RuntimeError):
    """The service answered with an error status.

    ``status`` is the HTTP code; the message is the server's ``error``
    field.  ``trace_id`` is the ``X-Trace-Id`` the server (or router)
    stamped on the failed answer, when it sent one -- quote it to
    ``GET /trace/<id>`` (:meth:`ServiceClient.trace`) to see where the
    request died.
    """

    def __init__(
        self, status: int, message: str, trace_id: str | None = None
    ) -> None:
        super().__init__(f"{status}: {message}")
        #: The HTTP status code of the failed call.
        self.status = status
        #: The server-assigned trace id of the failed call (or ``None``).
        self.trace_id = trace_id


class ServiceOverloadedError(ServiceError):
    """HTTP 429: the service's pending queue is full.

    ``retry_after`` carries the server's suggested backoff in seconds.
    """

    def __init__(
        self,
        message: str,
        retry_after: int,
        trace_id: str | None = None,
    ) -> None:
        super().__init__(429, message, trace_id)
        #: Server-suggested backoff in whole seconds.
        self.retry_after = retry_after


class ServiceClient:
    """Call a running mining service over its JSON/HTTP protocol.

    Parameters
    ----------
    host / port:
        Where the service listens (``ServiceThread.address`` or the
        ``repro-mss serve`` values).
    timeout:
        Socket timeout per call, in seconds.

    Examples
    --------
    >>> ServiceClient("127.0.0.1", 8765).address
    ('127.0.0.1', 8765)
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 60.0
    ) -> None:
        self.address = (host, port)
        self.timeout = timeout
        #: The ``X-Trace-Id`` of the most recent exchange (``None``
        #: before the first call, or when the server sent no id).
        #: Survives errors: after a failed :meth:`mine`, pass it -- or
        #: nothing -- to :meth:`trace` to pull the request's span tree.
        self.last_trace_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None
        #: Injectable sleep (tests swap it to record backoffs instead
        #: of actually waiting).
        self._sleep = time.sleep

    def mine(
        self,
        texts: list[str] | None = None,
        *,
        text: str | None = None,
        ids: list[str] | None = None,
        problem: str | None = None,
        t: int | None = None,
        threshold: float | None = None,
        min_length: int | None = None,
        limit: int | None = None,
        backend: str | None = None,
        alphabet: str | None = None,
        probs: list[float] | None = None,
        correction: str | None = None,
        alpha: float | None = None,
        timeout_ms: int | None = None,
        retries: int = 0,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
    ) -> dict:
        """``POST /mine``: mine ``text`` (one document) or ``texts``.

        Every keyword through ``timeout_ms`` mirrors the request schema
        of :mod:`repro.service.protocol`; ``None`` fields are simply
        omitted and take the service defaults.  Returns the decoded
        corpus payload (``documents``, ``significant``, ``results`` per
        document, ...).

        ``retries`` allows up to N additional attempts around transient
        failures: HTTP 429 (sleeping the server's ``Retry-After``, but
        never past ``backoff_cap``), HTTP 503, and connection-level
        errors -- each non-429 retry sleeps ``backoff_base *
        2**attempt`` seconds with deterministic jitter, capped at
        ``backoff_cap``.  400/404/413/500/504 responses are never
        retried: they are answers, not transport weather.
        """
        payload = {
            name: value
            for name, value in (
                ("texts", texts),
                ("text", text),
                ("ids", ids),
                ("problem", problem),
                ("t", t),
                ("threshold", threshold),
                ("min_length", min_length),
                ("limit", limit),
                ("backend", backend),
                ("alphabet", alphabet),
                ("probs", probs),
                ("correction", correction),
                ("alpha", alpha),
                ("timeout_ms", timeout_ms),
            )
            if value is not None
        }
        attempt = 0
        while True:
            try:
                return self._call("POST", "/mine", payload)
            except ServiceOverloadedError as exc:
                if attempt >= retries:
                    raise
                self._sleep(min(float(backoff_cap), float(exc.retry_after)))
            except ServiceError as exc:
                if exc.status != 503 or attempt >= retries:
                    raise
                self._sleep(self._backoff(attempt, backoff_base, backoff_cap))
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ):
                # Mining is idempotent, so a connection that died before
                # the response is safe to retry on a fresh socket.
                if attempt >= retries:
                    raise
                self._sleep(self._backoff(attempt, backoff_base, backoff_cap))
            attempt += 1

    def _backoff(self, attempt: int, base: float, cap: float) -> float:
        """Capped exponential backoff with deterministic jitter.

        The jitter factor in ``[1, 2)`` is derived from
        ``sha256(host:port:attempt)`` -- stable for a given client and
        attempt (tests can assert exact sleeps), yet de-synchronised
        across distinct clients hammering one service.
        """
        digest = hashlib.sha256(
            f"{self.address[0]}:{self.address[1]}:{attempt}".encode()
        ).digest()
        jitter = 1.0 + int.from_bytes(digest[:8], "big") / 2**64
        return min(float(cap), float(base) * (2.0**attempt) * jitter)

    def healthz(self) -> dict:
        """``GET /healthz``: the service's liveness payload."""
        return self._call("GET", "/healthz")

    def stats(self, *, trace: bool = False) -> dict:
        """``GET /stats``: queue depth, batch fill, cache hit rates.

        ``trace=True`` asks for ``/stats?trace=1``, which additionally
        returns the recent and slow request span trees under
        ``"traces"``.
        """
        return self._call("GET", "/stats?trace=1" if trace else "/stats")

    def metrics(self) -> str:
        """``GET /metrics``: the Prometheus text exposition (raw text)."""
        return self._call("GET", "/metrics", expect_json=False)

    def trace(self, trace_id: str | None = None) -> dict:
        """``GET /trace/<id>``: the span tree of one finished request.

        ``trace_id`` defaults to :attr:`last_trace_id` -- the id of
        whatever this client just did -- so the idiom after a slow or
        failed call is simply ``client.trace()``.  Against a router,
        the answer is the assembled fleet-wide tree (router proxy spans
        with the owning shard's spans stitched underneath).
        """
        trace_id = trace_id or self.last_trace_id
        if not trace_id:
            raise ValueError(
                "no trace id: pass one explicitly or make a call first"
            )
        return self._call("GET", f"/trace/{trace_id}")

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: returns the client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the connection."""
        self.close()

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _call(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        expect_json: bool = True,
    ):
        """One request/response exchange, reconnecting once if needed.

        When the fresh connection fails too, the raised error is
        chained (``raise ... from first_exc``) to the one that killed
        the original keep-alive connection -- the first failure is
        usually the real story (e.g. the server restarting), not the
        connection-refused that follows it.
        """
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        first_exc: Exception | None = None
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    *self.address, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ) as exc:
                # A keep-alive peer may have closed between calls;
                # retry exactly once on a fresh connection.
                self.close()
                if attempt == 2:
                    raise exc from first_exc
                first_exc = exc
        trace_id = response.headers.get("X-Trace-Id")
        if trace_id is not None:
            self.last_trace_id = trace_id
        if not expect_json:
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    data.decode("utf-8", "replace")[:200],
                    trace_id,
                )
            return data.decode("utf-8")
        try:
            decoded = json.loads(data)
        except ValueError:
            raise ServiceError(
                response.status,
                f"non-JSON response: {data[:200]!r}",
                trace_id,
            ) from None
        if trace_id is None and isinstance(decoded, dict):
            # Synthesized errors carry the id in the body as well; old
            # servers may send neither, leaving last_trace_id alone.
            body_id = decoded.get("trace_id")
            if isinstance(body_id, str) and body_id:
                trace_id = body_id
                self.last_trace_id = trace_id
        if response.status == 429:
            raise ServiceOverloadedError(
                decoded.get("error", "overloaded"),
                retry_after=int(response.headers.get("Retry-After", 1)),
                trace_id=trace_id,
            )
        if response.status >= 400:
            raise ServiceError(
                response.status,
                decoded.get("error", "unknown error"),
                trace_id,
            )
        return decoded

    def __repr__(self) -> str:
        return f"ServiceClient(address={self.address!r})"
