"""A blocking stdlib client for the mining service.

:class:`ServiceClient` wraps one keep-alive ``http.client`` connection
to a running service (``repro-mss serve`` or an in-process
:class:`~repro.service.app.ServiceThread`).  It exists so tests,
benchmarks and examples never hand-roll HTTP: :meth:`ServiceClient.mine`
takes the same vocabulary as :class:`~repro.engine.jobs.JobSpec` and
returns the decoded :meth:`~repro.engine.corpus.CorpusResult.payload`
dict.

Error mapping: HTTP 429 raises :class:`ServiceOverloadedError` carrying
the server's ``Retry-After`` hint; every other non-2xx status raises
:class:`ServiceError` with the server's error message.  A dropped
keep-alive connection is re-established once per call.
"""

from __future__ import annotations

import http.client
import json
import socket

__all__ = ["ServiceClient", "ServiceError", "ServiceOverloadedError"]


class ServiceError(RuntimeError):
    """The service answered with an error status.

    ``status`` is the HTTP code; the message is the server's ``error``
    field.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"{status}: {message}")
        #: The HTTP status code of the failed call.
        self.status = status


class ServiceOverloadedError(ServiceError):
    """HTTP 429: the service's pending queue is full.

    ``retry_after`` carries the server's suggested backoff in seconds.
    """

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(429, message)
        #: Server-suggested backoff in whole seconds.
        self.retry_after = retry_after


class ServiceClient:
    """Call a running mining service over its JSON/HTTP protocol.

    Parameters
    ----------
    host / port:
        Where the service listens (``ServiceThread.address`` or the
        ``repro-mss serve`` values).
    timeout:
        Socket timeout per call, in seconds.

    Examples
    --------
    >>> ServiceClient("127.0.0.1", 8765).address
    ('127.0.0.1', 8765)
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 60.0
    ) -> None:
        self.address = (host, port)
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def mine(
        self,
        texts: list[str] | None = None,
        *,
        text: str | None = None,
        ids: list[str] | None = None,
        problem: str | None = None,
        t: int | None = None,
        threshold: float | None = None,
        min_length: int | None = None,
        limit: int | None = None,
        backend: str | None = None,
        alphabet: str | None = None,
        probs: list[float] | None = None,
        correction: str | None = None,
        alpha: float | None = None,
    ) -> dict:
        """``POST /mine``: mine ``text`` (one document) or ``texts``.

        Every keyword mirrors the request schema of
        :mod:`repro.service.protocol`; ``None`` fields are simply
        omitted and take the service defaults.  Returns the decoded
        corpus payload (``documents``, ``significant``, ``results`` per
        document, ...).
        """
        payload = {
            name: value
            for name, value in (
                ("texts", texts),
                ("text", text),
                ("ids", ids),
                ("problem", problem),
                ("t", t),
                ("threshold", threshold),
                ("min_length", min_length),
                ("limit", limit),
                ("backend", backend),
                ("alphabet", alphabet),
                ("probs", probs),
                ("correction", correction),
                ("alpha", alpha),
            )
            if value is not None
        }
        return self._call("POST", "/mine", payload)

    def healthz(self) -> dict:
        """``GET /healthz``: the service's liveness payload."""
        return self._call("GET", "/healthz")

    def stats(self, *, trace: bool = False) -> dict:
        """``GET /stats``: queue depth, batch fill, cache hit rates.

        ``trace=True`` asks for ``/stats?trace=1``, which additionally
        returns the recent and slow request span trees under
        ``"traces"``.
        """
        return self._call("GET", "/stats?trace=1" if trace else "/stats")

    def metrics(self) -> str:
        """``GET /metrics``: the Prometheus text exposition (raw text)."""
        return self._call("GET", "/metrics", expect_json=False)

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: returns the client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the connection."""
        self.close()

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _call(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        expect_json: bool = True,
    ):
        """One request/response exchange, reconnecting once if needed."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    *self.address, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ):
                # A keep-alive peer may have closed between calls;
                # retry exactly once on a fresh connection.
                self.close()
                if attempt == 2:
                    raise
        if not expect_json:
            if response.status >= 400:
                raise ServiceError(
                    response.status, data.decode("utf-8", "replace")[:200]
                )
            return data.decode("utf-8")
        try:
            decoded = json.loads(data)
        except ValueError:
            raise ServiceError(
                response.status, f"non-JSON response: {data[:200]!r}"
            ) from None
        if response.status == 429:
            raise ServiceOverloadedError(
                decoded.get("error", "overloaded"),
                retry_after=int(response.headers.get("Retry-After", 1)),
            )
        if response.status >= 400:
            raise ServiceError(
                response.status, decoded.get("error", "unknown error")
            )
        return decoded

    def __repr__(self) -> str:
        return f"ServiceClient(address={self.address!r})"
