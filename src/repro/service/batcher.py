"""Request micro-batching: many concurrent requests, few kernel calls.

The engine's throughput comes from batched kernel dispatch
(``mine_batch`` over ``batch_docs`` documents) -- but a service sees
documents one or two at a time, spread across many concurrent clients.
:class:`MicroBatcher` converts the one into the other:

1. ``submit()`` enqueues a validated
   :class:`~repro.service.protocol.MineRequest` and awaits its result;
   the bounded queue (``max_pending_docs``) gives deterministic
   backpressure -- a request that would overflow it is rejected
   *immediately* with :class:`ServiceOverloaded` (HTTP 429 +
   ``Retry-After``), never silently delayed.
2. A single dispatcher coroutine drains the queue into batches of up to
   ``batch_docs`` documents, lingering ``linger_seconds`` after the
   first arrival so concurrent requests can coalesce (set 0 to
   dispatch eagerly).
3. Each batch is grouped by the requests' ``(spec, model)`` key and
   mined through **one**
   :meth:`~repro.engine.corpus.CorpusEngine.mine_documents` call on a
   dedicated worker thread (the engine below fans out to its persistent
   shared-memory pool); the event loop stays responsive throughout.
4. Each request's slice of the mined documents is then
   :meth:`~repro.engine.corpus.CorpusEngine.finalize`-d separately --
   calibration and the multiple-testing correction run across *that
   request's* documents only, which is what keeps responses
   bit-identical to a direct ``CorpusEngine.run`` of the same request
   (enforced by ``tests/service/test_service.py``).

Shutdown is graceful by construction: :meth:`close` stops intake, lets
the dispatcher drain everything already queued, and only then returns.
"""

from __future__ import annotations

import asyncio
import collections
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.engine.corpus import CorpusEngine, CorpusResult
from repro.engine.deadline import (
    Deadline,
    DeadlineExceeded,
    reset_active_deadline,
    set_active_deadline,
)
from repro.engine.jobs import MiningJob
from repro.engine.shm import DEFAULT_BATCH_DOCS
from repro.faults import get_faults
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    Trace,
    reset_active_trace_ids,
    set_active_trace_ids,
)
from repro.service.protocol import MineRequest

__all__ = [
    "MicroBatcher",
    "RequestTooLarge",
    "ServiceDraining",
    "ServiceOverloaded",
]

#: Document-count buckets for the batch-fill histogram (how full each
#: dispatched batch was, in documents).
_FILL_BUCKETS = tuple(float(2**i) for i in range(10))


class RequestTooLarge(ValueError):
    """A single request that can *never* fit ``max_pending_docs``.

    Deliberately not a :class:`ServiceOverloaded`: retrying cannot cure
    it, so the HTTP front-end maps it to 413, not 429.  This is the one
    place the condition and its message live.
    """


class ServiceOverloaded(Exception):
    """The pending queue is full; retry after ``retry_after`` seconds.

    The service front-end maps this to HTTP 429 with a ``Retry-After``
    header.  Raised synchronously at submit time, so an over-capacity
    burst fails fast instead of stacking up latency.
    """

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        #: Suggested client backoff in whole seconds (>= 1).
        self.retry_after = max(1, int(retry_after))


class ServiceDraining(ServiceOverloaded):
    """The service is draining for shutdown; this instance is done.

    A :class:`ServiceOverloaded` subclass (same synchronous-rejection
    contract), but semantically different: retrying *this instance*
    cannot succeed, so the HTTP front-end maps it to 503 with
    ``Connection: close`` instead of 429 + ``Retry-After`` -- a
    load-balancer should move on to another replica.
    """


@dataclass
class _Pending:
    """One queued request: its jobs and the future its client awaits."""

    request: MineRequest
    jobs: list[MiningJob]
    future: asyncio.Future
    queued_at: float = field(default_factory=time.perf_counter)
    #: Request trace to append batching/mining spans to (optional).
    trace: Trace | None = None
    #: The request's end-to-end deadline (``None`` = no limit).  An
    #: expired pending is completed with
    #: :class:`~repro.engine.deadline.DeadlineExceeded` at batch
    #: formation (or after a mine-thread delay) instead of being mined.
    deadline: Deadline | None = None


class MicroBatcher:
    """Coalesce concurrent mine requests into batched engine dispatch.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.corpus.CorpusEngine` to drive.  For a
        service this is built over a *persistent*
        :class:`~repro.engine.shm.SharedMemoryExecutor`, so batch after
        batch reuses one worker pool.
    batch_docs:
        Target documents per dispatched batch (a single request larger
        than this still rides in one batch of its own).
    max_pending_docs:
        Bound on queued documents; the backpressure knob.
    linger_seconds:
        How long the dispatcher waits after the first queued request
        for companions to arrive.  ``0`` disables coalescing delay.
    tenant_fair_share:
        Fraction of ``max_pending_docs`` a single tenant (requests
        sharing a :attr:`~repro.service.protocol.MineRequest.tenant_key`,
        i.e. a null model) may occupy in the queue, in ``(0, 1]``.  At
        the default ``1.0`` there is no per-tenant bound beyond the
        global one; below it, a burst from one tenant hits a
        deterministic 429 at ``int(max_pending_docs *
        tenant_fair_share)`` queued documents while other tenants'
        requests keep being accepted.  A single request larger than the
        tenant share can never be accepted and raises
        :class:`RequestTooLarge` (413), exactly like one larger than
        ``max_pending_docs``.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` backing the
        batcher's counters and histograms.  Defaults to a **fresh**
        registry per batcher (not the process default) so that stats
        start at zero for each instance; the service injects its own
        registry to aggregate across components.
    """

    def __init__(
        self,
        engine: CorpusEngine,
        *,
        batch_docs: int | None = None,
        max_pending_docs: int = 1024,
        linger_seconds: float = 0.002,
        tenant_fair_share: float = 1.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if batch_docs is None:
            batch_docs = engine.batch_docs or DEFAULT_BATCH_DOCS
        if batch_docs < 1:
            raise ValueError(f"batch_docs must be >= 1, got {batch_docs!r}")
        if max_pending_docs < 1:
            raise ValueError(
                f"max_pending_docs must be >= 1, got {max_pending_docs!r}"
            )
        if linger_seconds < 0:
            raise ValueError(
                f"linger_seconds must be >= 0, got {linger_seconds!r}"
            )
        if not 0.0 < tenant_fair_share <= 1.0:
            raise ValueError(
                f"tenant_fair_share must be in (0, 1], got "
                f"{tenant_fair_share!r}"
            )
        self.engine = engine
        self.batch_docs = batch_docs
        self.max_pending_docs = max_pending_docs
        self.linger_seconds = linger_seconds
        self.tenant_fair_share = tenant_fair_share
        #: Queued-document bound per tenant key (>= 1 so every tenant
        #: can always queue at least a one-document request).
        self.tenant_cap_docs = max(
            1, int(max_pending_docs * tenant_fair_share)
        )
        self._queue: collections.deque[_Pending] = collections.deque()
        self._queued_docs = 0
        #: Queued documents per tenant key (mirrors ``_queued_docs``;
        #: entries are dropped at zero so the dict tracks only tenants
        #: with work actually waiting).
        self._tenant_docs: dict[str, int] = {}
        self._in_flight_docs = 0
        self._wakeup: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closing = False
        # One mining thread: batches are serialised here on purpose --
        # parallelism lives *inside* the engine (its worker pool), and a
        # single lane keeps dispatch order deterministic.
        self._mine_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-mine"
        )
        # Counters surfaced by stats() and GET /metrics: registry-backed
        # so /stats and the Prometheus exposition share one source of
        # truth.  The attribute-style views below stay assignable for
        # tests and callers that seed them.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_batcher_requests_total",
            "Mine requests accepted by the micro-batcher.",
        )
        self._requests_rejected = self.metrics.counter(
            "repro_batcher_requests_rejected_total",
            "Mine requests rejected with backpressure (queue full or closing).",
        )
        # Created at zero so the family renders in /metrics before the
        # first quota rejection.
        self._tenant_rejected_counter = self.metrics.counter(
            "repro_batcher_tenant_rejected_total",
            "Mine requests rejected by the per-tenant fair-share quota.",
        )
        self._docs_total = self.metrics.counter(
            "repro_batcher_docs_total",
            "Documents mined through dispatched batches.",
        )
        self._batches = self.metrics.counter(
            "repro_batcher_batches_total",
            "Batches dispatched to the engine.",
        )
        self._mine_seconds = self.metrics.counter(
            "repro_batcher_mine_seconds_total",
            "Wall seconds spent in batched mining passes.",
        )
        self._mine_histogram = self.metrics.histogram(
            "repro_batch_mine_seconds",
            "Wall seconds per dispatched batch mining pass.",
        )
        self._fill_histogram = self.metrics.histogram(
            "repro_batch_fill_docs",
            "Documents per dispatched batch.",
            buckets=_FILL_BUCKETS,
        )
        self._queue_wait_histogram = self.metrics.histogram(
            "repro_batch_queue_wait_seconds",
            "Seconds a request waited queued before its batch started.",
        )

    # ------------------------------------------------------------------
    # Registry-backed counter views (readable *and* assignable, so
    # existing callers and tests that seed them keep working).
    # ------------------------------------------------------------------

    @property
    def requests_total(self) -> int:
        """Requests accepted (registry-backed)."""
        return int(self._requests_total.value)

    @requests_total.setter
    def requests_total(self, value) -> None:
        self._requests_total.reset(value)

    @property
    def requests_rejected(self) -> int:
        """Requests rejected with backpressure (registry-backed)."""
        return int(self._requests_rejected.value)

    @requests_rejected.setter
    def requests_rejected(self, value) -> None:
        self._requests_rejected.reset(value)

    @property
    def tenant_rejected(self) -> int:
        """Requests rejected by the per-tenant quota (registry-backed)."""
        return int(self._tenant_rejected_counter.value)

    @property
    def docs_total(self) -> int:
        """Documents mined through batches (registry-backed)."""
        return int(self._docs_total.value)

    @docs_total.setter
    def docs_total(self, value) -> None:
        self._docs_total.reset(value)

    @property
    def batches(self) -> int:
        """Batches dispatched (registry-backed)."""
        return int(self._batches.value)

    @batches.setter
    def batches(self, value) -> None:
        self._batches.reset(value)

    @property
    def mine_seconds(self) -> float:
        """Wall seconds spent mining (registry-backed)."""
        return self._mine_seconds.value

    @mine_seconds.setter
    def mine_seconds(self, value) -> None:
        self._mine_seconds.reset(value)

    async def start(self) -> None:
        """Start the dispatcher coroutine (idempotent).

        A batcher that has been :meth:`close`-d stays closed -- build a
        new one rather than restarting it.
        """
        if self._task is None and not self._closing:
            self._wakeup = asyncio.Event()
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun; a closed batcher never
        accepts again (build a new one)."""
        return self._closing

    @property
    def queue_depth_docs(self) -> int:
        """Documents currently queued (excludes the in-flight batch)."""
        return self._queued_docs

    @property
    def in_flight_docs(self) -> int:
        """Documents in the batch currently being mined."""
        return self._in_flight_docs

    def docs_per_second(self) -> float:
        """Measured mining throughput (0.0 until the first batch lands)."""
        if self.mine_seconds <= 0.0:
            return 0.0
        return self.docs_total / self.mine_seconds

    def retry_after_hint(self) -> int:
        """Deterministic backoff hint: queue depth over throughput.

        Falls back to 1 second before any throughput has been measured;
        clamped to [1, 60].
        """
        rate = self.docs_per_second()
        backlog = self._queued_docs + self._in_flight_docs
        if rate <= 0.0 or backlog <= 0:
            return 1
        return max(1, min(60, math.ceil(backlog / rate)))

    async def submit(
        self,
        request: MineRequest,
        *,
        trace: Trace | None = None,
        deadline: Deadline | None = None,
    ) -> CorpusResult:
        """Enqueue a request and await its :class:`CorpusResult`.

        Raises :class:`ServiceOverloaded` immediately when accepting the
        request would push the queued-document count past
        ``max_pending_docs``, and :class:`ServiceDraining` (a subclass)
        when the batcher is shutting down.  A single request larger
        than ``max_pending_docs`` can *never* be accepted, so it raises
        :class:`RequestTooLarge` instead -- retrying it would loop
        forever (the HTTP front-end maps this to 413).

        A ``deadline`` already expired at admission raises
        :class:`~repro.engine.deadline.DeadlineExceeded` without
        queueing; one that expires while queued completes the request
        with the same error at batch formation, never mining it --
        timeouts are not backpressure, so neither path touches the
        rejected counter.

        When a :class:`~repro.obs.tracing.Trace` is supplied, the
        batcher appends queue-wait, batch-mine (with kernel / shm
        children) and finalize spans to it as the request moves through
        the pipeline.
        """
        if request.docs > self.max_pending_docs:
            raise RequestTooLarge(
                f"request carries {request.docs} documents but the service "
                f"accepts at most {self.max_pending_docs} queued documents; "
                f"split the request"
            )
        if request.docs > self.tenant_cap_docs:
            # Permanently over the tenant's share: the quota is static,
            # so retrying can never cure this either -- 413, not 429.
            raise RequestTooLarge(
                f"request carries {request.docs} documents but a single "
                f"tenant may occupy at most {self.tenant_cap_docs} queued "
                f"documents (fair share {self.tenant_fair_share} of "
                f"{self.max_pending_docs}); split the request"
            )
        if self._closing:
            self._requests_rejected.inc()
            raise ServiceDraining("service is draining for shutdown")
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded("deadline expired before admission")
        if self._task is None:
            await self.start()
        if self._queued_docs + request.docs > self.max_pending_docs:
            self._requests_rejected.inc()
            raise ServiceOverloaded(
                f"pending queue is full ({self._queued_docs} of "
                f"{self.max_pending_docs} documents queued)",
                retry_after=self.retry_after_hint(),
            )
        tenant = request.tenant_key
        tenant_queued = self._tenant_docs.get(tenant, 0)
        if tenant_queued + request.docs > self.tenant_cap_docs:
            # Deterministic fair-share 429: this tenant is hogging the
            # queue, but capacity remains for everyone else -- their
            # submissions are untouched by this rejection.
            self._requests_rejected.inc()
            self._tenant_rejected_counter.inc()
            raise ServiceOverloaded(
                f"tenant {tenant} has {tenant_queued} of its "
                f"{self.tenant_cap_docs}-document fair share queued "
                f"(share {self.tenant_fair_share} of "
                f"{self.max_pending_docs})",
                retry_after=self.retry_after_hint(),
            )
        self._tenant_docs[tenant] = tenant_queued + request.docs
        self._requests_total.inc()
        pending = _Pending(
            request=request,
            jobs=request.jobs(),
            future=asyncio.get_running_loop().create_future(),
            trace=trace,
            deadline=deadline,
        )
        self._queue.append(pending)
        self._queued_docs += request.docs
        self._wakeup.set()
        return await pending.future

    async def close(self) -> None:
        """Graceful drain: stop intake, mine everything queued, stop.

        Every already-accepted request still gets its result (or its
        error); only *new* submissions are rejected while draining.
        """
        self._closing = True
        if self._task is not None:
            self._wakeup.set()
            await self._task
            self._task = None
        self._mine_pool.shutdown(wait=True)

    def stats(self) -> dict:
        """JSON-ready batching metrics (the ``/stats`` payload core)."""
        return {
            "requests_total": self.requests_total,
            "requests_rejected": self.requests_rejected,
            "tenant_rejected": self.tenant_rejected,
            "docs_total": self.docs_total,
            "batches": self.batches,
            "batch_fill": (
                self.docs_total / self.batches if self.batches else 0.0
            ),
            "batch_docs": self.batch_docs,
            "max_pending_docs": self.max_pending_docs,
            "tenant_fair_share": self.tenant_fair_share,
            "tenant_cap_docs": self.tenant_cap_docs,
            "tenants_queued": len(self._tenant_docs),
            "linger_seconds": self.linger_seconds,
            "queue_depth_docs": self._queued_docs,
            "in_flight_docs": self._in_flight_docs,
            "mine_seconds": self.mine_seconds,
            "docs_per_second": self.docs_per_second(),
        }

    # ------------------------------------------------------------------
    # Dispatcher internals.
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue into batches until closed *and* empty."""
        loop = asyncio.get_running_loop()
        while True:
            while not self._queue and not self._closing:
                self._wakeup.clear()
                await self._wakeup.wait()
            if not self._queue:
                return  # closing and drained
            if (
                self.linger_seconds > 0
                and self._queued_docs < self.batch_docs
                and not self._closing
            ):
                await asyncio.sleep(self.linger_seconds)
            batch = self._take_batch()
            if batch:
                await self._run_batch(loop, batch)

    def _take_batch(self) -> list[_Pending]:
        """Pop requests until the batch reaches ``batch_docs`` documents.

        Always takes at least one live request, so an oversized request
        rides in a batch of its own rather than deadlocking.  Requests
        whose deadline passed while queued are *shed* on the way: popped
        and completed with
        :class:`~repro.engine.deadline.DeadlineExceeded` instead of
        occupying batch capacity (their batchmates stay bit-identical --
        mining is batch-composition-invariant).  May return an empty
        batch when everything at hand had expired.
        """
        batch: list[_Pending] = []
        docs = 0
        while self._queue:
            head = self._queue[0]
            if head.deadline is not None and head.deadline.expired():
                self._queue.popleft()
                self._queued_docs -= head.request.docs
                self._release_tenant(head.request)
                self._shed(head)
                continue
            head_docs = head.request.docs
            if batch and docs + head_docs > self.batch_docs:
                break
            pending = self._queue.popleft()
            docs += head_docs
            self._release_tenant(pending.request)
            batch.append(pending)
        self._queued_docs -= docs
        self._in_flight_docs = docs
        return batch

    def _release_tenant(self, request: MineRequest) -> None:
        """Return a dequeued request's documents to its tenant's share."""
        tenant = request.tenant_key
        remaining = self._tenant_docs.get(tenant, 0) - request.docs
        if remaining > 0:
            self._tenant_docs[tenant] = remaining
        else:
            self._tenant_docs.pop(tenant, None)

    def _shed(self, pending: _Pending) -> None:
        """Complete an expired request with ``DeadlineExceeded``."""
        if not pending.future.done():
            pending.future.set_exception(
                DeadlineExceeded("deadline expired while queued")
            )

    async def _run_batch(self, loop, batch: list[_Pending]) -> None:
        """Mine *and finalize* one batch off-loop; resolve each request.

        Finalize runs on the same worker thread as the mining pass --
        it can trigger a cold Monte-Carlo calibration simulation (plus
        a disk write, for :class:`~repro.service.store.
        DiskCalibrationCache`), which must never stall the event loop.
        """
        # Order requests so equal (spec, model) keys are consecutive:
        # mine_documents groups consecutive jobs into one kernel call.
        groups: dict[object, list[_Pending]] = {}
        for pending in batch:
            key = (pending.request.spec, pending.request.model)
            groups.setdefault(key, []).append(pending)
        ordered = [pending for group in groups.values() for pending in group]

        def mine_and_finalize():
            # Fault site: stall the mine thread before any work -- long
            # enough, in chaos tests, for queued deadlines to pass.
            faults = get_faults()
            if faults.should_fire("mine_delay_ms"):
                time.sleep(faults.param("mine_delay_ms") / 1000.0)
            # Deadlines are re-checked here, on the mine thread, because
            # time passed since batch formation: expired members are
            # completed with DeadlineExceeded instead of mined, and
            # batch-composition invariance keeps the survivors'
            # results bit-identical either way.
            alive: list[_Pending] = []
            outcomes = []
            for pending in ordered:
                if pending.deadline is not None and pending.deadline.expired():
                    outcomes.append((
                        pending,
                        DeadlineExceeded("deadline expired before mining"),
                        True,
                    ))
                else:
                    alive.append(pending)
            jobs = [job for pending in alive for job in pending.jobs]
            trace_ids = tuple(
                pending.trace.trace_id
                for pending in alive
                if pending.trace is not None
            )
            # The executor may shed the whole run only once *every*
            # member is past due, so the tunnelled batch deadline is the
            # latest member deadline -- and absent entirely while any
            # member has no limit.
            batch_deadline = None
            if alive and all(p.deadline is not None for p in alive):
                batch_deadline = Deadline(
                    expires_at=max(p.deadline.expires_at for p in alive)
                )
            started = time.perf_counter()
            # Tunnel the batch's trace ids (and deadline) to the shm
            # executor through contextvars: mine_documents keeps its
            # signature (test fakes override it), yet worker-fallback
            # logs can still name the requests a crashed chunk belonged
            # to, and expired batches stop mining between chunks.
            token = set_active_trace_ids(trace_ids) if trace_ids else None
            deadline_token = (
                set_active_deadline(batch_deadline)
                if batch_deadline is not None
                else None
            )
            try:
                documents = self.engine.mine_documents(jobs) if jobs else []
            except DeadlineExceeded as exc:
                # Every member was past due (the batch deadline is the
                # max); 504 them all rather than mining into the void.
                outcomes.extend((pending, exc, True) for pending in alive)
                return time.perf_counter() - started, 0, outcomes
            finally:
                if deadline_token is not None:
                    reset_active_deadline(deadline_token)
                if token is not None:
                    reset_active_trace_ids(token)
            mine_done = time.perf_counter()
            mine_elapsed = mine_done - started
            if jobs:
                self._mine_histogram.observe(mine_elapsed)
                self._fill_histogram.observe(float(len(jobs)))
            run_info = getattr(self.engine.executor, "last_run_info", None)
            run_info = run_info if isinstance(run_info, dict) else {}
            cursor = 0
            for pending in alive:
                docs = pending.request.docs
                slice_docs = documents[cursor : cursor + docs]
                cursor += docs
                self._queue_wait_histogram.observe(
                    max(0.0, started - pending.queued_at)
                )
                if pending.trace is not None:
                    self._record_spans(
                        pending, slice_docs, started, mine_done, run_info
                    )
                finalize_started = time.perf_counter()
                try:
                    result = self.engine.finalize(
                        pending.jobs,
                        slice_docs,
                        correction=pending.request.correction,
                        alpha=pending.request.alpha,
                        batch_docs=self.engine.batch_docs,
                        elapsed=mine_elapsed * (docs / len(jobs)),
                    )
                except Exception as exc:
                    outcomes.append((pending, exc, True))
                else:
                    outcomes.append((pending, result, False))
                if pending.trace is not None:
                    pending.trace.add(
                        "finalize", finalize_started, time.perf_counter()
                    )
            return mine_elapsed, len(jobs), outcomes

        try:
            elapsed, mined_docs, outcomes = await loop.run_in_executor(
                self._mine_pool, mine_and_finalize
            )
        except Exception as exc:
            self._resolve_all(ordered, exc)
            self._in_flight_docs = 0
            return
        if mined_docs:
            self._batches.inc()
            self._docs_total.inc(mined_docs)
            self._mine_seconds.inc(elapsed)
        for pending, outcome, failed in outcomes:
            if pending.future.done():  # client gone; nothing to deliver
                continue
            if failed:
                pending.future.set_exception(outcome)
            else:
                pending.future.set_result(outcome)
        self._in_flight_docs = 0

    def _record_spans(
        self, pending: _Pending, slice_docs, started, mine_done, run_info
    ) -> None:
        """Append batching spans for one request to its trace.

        ``queue_wait`` and ``batch_mine`` are measured directly; the
        ``kernel`` / ``shm_pack`` / ``replay`` children are synthesised
        from the engine's per-document scan stats and the executor's
        ``last_run_info`` timings (their positions inside ``batch_mine``
        are approximate, their durations are measured).  One
        ``worker_chunk`` child per mined chunk is rebuilt from the span
        records the workers shipped home on their chunk payloads
        (``chunk_spans``) -- durations measured worker-side, positions
        re-based into this process's ``batch_mine`` window because
        ``perf_counter`` epochs do not travel across processes.
        """
        trace = pending.trace
        trace.add(
            "queue_wait",
            min(pending.queued_at, started),
            started,
            docs=pending.request.docs,
        )
        trace.add(
            "batch_mine",
            started,
            mine_done,
            batch_docs=len(slice_docs),
        )
        kernel_seconds = sum(
            document.stats.elapsed_seconds for document in slice_docs
        )
        pack_seconds = float(run_info.get("pack_seconds") or 0.0)
        if pack_seconds > 0.0:
            trace.add(
                "shm_pack",
                started,
                min(mine_done, started + pack_seconds),
                parent="batch_mine",
            )
        if kernel_seconds > 0.0:
            kernel_start = min(mine_done, started + pack_seconds)
            trace.add(
                "kernel",
                kernel_start,
                min(mine_done, kernel_start + kernel_seconds),
                parent="batch_mine",
                docs=len(slice_docs),
            )
        replay_seconds = float(run_info.get("aggregate_seconds") or 0.0)
        if replay_seconds > 0.0:
            trace.add(
                "replay",
                max(started, mine_done - replay_seconds),
                mine_done,
                parent="batch_mine",
            )
        cursor = min(mine_done, started + pack_seconds)
        for index, chunk in enumerate(run_info.get("chunk_spans") or ()):
            mine_seconds = float(chunk.get("mine_seconds") or 0.0)
            ended = min(mine_done, cursor + mine_seconds)
            trace.add(
                f"worker_chunk_{index}",
                cursor,
                ended,
                parent="batch_mine",
                pid=chunk.get("pid"),
                docs=chunk.get("docs"),
                worker=bool(chunk.get("worker")),
                kernel_ms=round(
                    float(chunk.get("kernel_seconds") or 0.0) * 1000.0, 3
                ),
            )
            # Pool chunks overlap in wall time; laying them end to end
            # would overrun batch_mine, so only in-process (serial)
            # chunks advance the cursor.
            if not chunk.get("worker"):
                cursor = ended

    def _resolve_all(self, batch: list[_Pending], exc: Exception) -> None:
        """Fail every request of a batch whose mining pass blew up."""
        for pending in batch:
            if not pending.future.done():
                pending.future.set_exception(exc)

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(batch_docs={self.batch_docs}, "
            f"max_pending_docs={self.max_pending_docs}, "
            f"linger_seconds={self.linger_seconds}, "
            f"queued_docs={self._queued_docs})"
        )
