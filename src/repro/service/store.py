"""Disk-backed calibration: warm restarts skip the Monte-Carlo bill.

The in-memory :class:`~repro.engine.calibration.CalibrationCache` makes
calibration affordable *within* one process -- one simulation per
(model, length-bucket).  A service restart used to throw that work away
and re-simulate every bucket from scratch on the first calibrated
requests.  :class:`DiskCalibrationCache` closes that gap: every
simulated distribution is also written to a versioned on-disk store
(one JSON file per (configuration, bucket) under
:func:`default_cache_dir` or an explicit ``cache_dir``), and a cache
miss probes the disk *before* simulating.  A warm restart therefore
serves its first calibrated request with **zero** Monte-Carlo trials
run -- enforced by ``tests/service/test_store.py``.

Safety over convenience: an on-disk entry is only trusted when its
stored :func:`~repro.engine.calibration.model_fingerprint` (covering
schema version, alphabet, probabilities, trials and seed) matches the
fingerprint this cache recomputes from its own parameters.  Corrupt,
truncated or mismatched files are treated as misses and overwritten by
a fresh simulation; they are never silently reused.  Disk writes are
atomic (temp file + ``os.replace``), so concurrent services sharing one
cache directory cannot observe torn entries.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.model import BernoulliModel
from repro.engine.calibration import (
    SCHEMA_VERSION,
    CalibrationCache,
    length_bucket,
    model_fingerprint,
)
from repro.analysis.calibration import MSSNullDistribution
from repro.faults import get_faults
from repro.obs.log import get_logger

__all__ = ["DiskCalibrationCache", "default_cache_dir"]

_LOG = get_logger("repro.service.store")

#: Magic string identifying per-bucket entry files on disk.
_ENTRY_FORMAT = "repro-mss-calibration-entry"


def default_cache_dir() -> Path:
    """The default on-disk store: ``$XDG_CACHE_HOME/repro-mss`` or
    ``~/.cache/repro-mss``.

    >>> default_cache_dir().name
    'repro-mss'
    """
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-mss"


class DiskCalibrationCache(CalibrationCache):
    """A :class:`CalibrationCache` whose entries persist across restarts.

    Lookup order on a request: in-memory dict, then the on-disk store,
    then Monte-Carlo simulation (which also writes the entry back to
    disk for the next process).  Results are bit-identical across the
    three paths -- disk entries literally are the simulated samples.

    Parameters
    ----------
    cache_dir:
        Directory for the store (created lazily on first write).
        ``None`` uses :func:`default_cache_dir`.
    trials / seed / backend:
        As for :class:`~repro.engine.calibration.CalibrationCache`; they
        are part of each entry's fingerprint, so caches with different
        configurations never share entries.
    max_entries:
        LRU bound on the *in-memory* tier (``serve
        --calib-cache-entries``).  The disk tier is unbounded, so an
        evicted entry costs a disk read on re-request, never a
        re-simulation.

    Examples
    --------
    >>> import tempfile
    >>> cache = DiskCalibrationCache(tempfile.mkdtemp(), trials=12)
    >>> cache.disk_hits, cache.disk_writes
    (0, 0)
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        trials: int = 100,
        seed: int = 0,
        backend=None,
        max_entries: int | None = None,
    ) -> None:
        super().__init__(
            trials=trials, seed=seed, backend=backend, max_entries=max_entries
        )
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        #: Requests served from disk (no simulation run).
        self.disk_hits = 0
        #: Entries written to disk (one per fresh simulation).
        self.disk_writes = 0
        #: Disk probes that found nothing usable (missing, corrupt, or
        #: fingerprint-mismatched files -- all treated identically).
        self.disk_misses = 0

    def entry_path(self, model: BernoulliModel, n: int) -> Path:
        """The store file covering documents of length ``n`` under ``model``.

        The name is ``<fingerprint-prefix>-b<bucket>.json``: the
        fingerprint pins the configuration, the bucket suffix keeps the
        directory human-browsable.
        """
        bucket = length_bucket(n)
        fingerprint = model_fingerprint(model, self.trials, self.seed)
        return self.cache_dir / f"{fingerprint[:40]}-b{bucket}.json"

    def distribution_for(self, model: BernoulliModel, n: int) -> MSSNullDistribution:
        """The cached null distribution: memory, then disk, then simulate."""
        bucket = length_bucket(n)
        key = (model, bucket)
        with self._lock:
            cached = self._cache_get(key)
            if cached is not None:
                self.hits += 1
        if cached is not None:
            self._event("memory_hit")
            return cached
        loaded = self._read_entry(model, bucket)
        if loaded is not None:
            self._event("disk_hit")
            _LOG.debug("calibration_disk_hit", bucket=bucket)
            with self._lock:
                self.disk_hits += 1
                return self._cache_store(key, loaded)
        self._event("disk_miss")
        with self._lock:
            self.disk_misses += 1
        distribution = super().distribution_for(model, n)
        self._write_entry(model, bucket, distribution)
        return distribution

    def _read_entry(self, model, bucket) -> MSSNullDistribution | None:
        """Load one entry, or None when absent/corrupt/mismatched.

        Unusable files are a miss, not an error: the caller re-simulates
        and overwrites them, which self-heals a damaged store.  A file
        that *exists* but cannot be used (torn JSON, schema or
        fingerprint mismatch, wrong sample count) is additionally
        counted and logged as a ``disk_corrupt`` event -- an absent file
        is an ordinary cold miss and stays silent.
        """
        path = self.entry_path(model, bucket)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._corrupt(path, bucket, "unreadable or invalid JSON")
            return None
        if get_faults().should_fire("disk_cache_corrupt"):
            # Fault site: treat the (perfectly fine) entry as damaged --
            # exercises the quarantine-and-resimulate path end to end.
            self._corrupt(path, bucket, "fault injection")
            return None
        expected = model_fingerprint(model, self.trials, self.seed)
        try:
            usable = (
                entry.get("format") == _ENTRY_FORMAT
                and entry.get("schema") == SCHEMA_VERSION
                and entry.get("fingerprint") == expected
                and int(entry.get("bucket", -1)) == bucket
                and len(entry["samples"]) == self.trials
            )
            if not usable:
                self._corrupt(path, bucket, "schema or fingerprint mismatch")
                return None
            samples = tuple(float(value) for value in entry["samples"])
            return MSSNullDistribution(
                n=bucket, alphabet_size=model.k, samples=samples
            )
        except (KeyError, TypeError, ValueError):
            self._corrupt(path, bucket, "malformed entry fields")
            return None

    def _corrupt(self, path, bucket, reason: str) -> None:
        """Count and log one unusable on-disk entry."""
        self._event("disk_corrupt")
        _LOG.warning(
            "calibration_disk_corrupt",
            path=str(path),
            bucket=bucket,
            reason=reason,
        )

    def _write_entry(self, model, bucket, distribution) -> None:
        """Persist one freshly simulated entry (atomic, best-effort).

        A read-only or full disk degrades the cache to in-memory
        behaviour instead of failing the request.
        """
        path = self.entry_path(model, bucket)
        entry = {
            "format": _ENTRY_FORMAT,
            "schema": SCHEMA_VERSION,
            "fingerprint": model_fingerprint(model, self.trials, self.seed),
            "alphabet": list(model.alphabet),
            "probabilities": list(model.probabilities),
            "trials": self.trials,
            "seed": self.seed,
            "bucket": bucket,
            "samples": list(distribution.samples),
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            _LOG.warning(
                "calibration_disk_write_failed",
                path=str(path),
                error=type(exc).__name__,
            )
            return
        self.disk_writes += 1
        self._event("disk_write")
        _LOG.debug("calibration_disk_write", path=str(path), bucket=bucket)

    def summary(self) -> dict:
        """JSON-ready view including the disk tier (for ``/stats``)."""
        data = super().summary()
        data["disk"] = {
            "cache_dir": str(self.cache_dir),
            "hits": self.disk_hits,
            "misses": self.disk_misses,
            "writes": self.disk_writes,
        }
        return data

    def __repr__(self) -> str:
        return (
            f"DiskCalibrationCache(cache_dir={str(self.cache_dir)!r}, "
            f"trials={self.trials}, entries={len(self)}, "
            f"disk_hits={self.disk_hits})"
        )
