"""repro.service: the async mining service over the corpus engine.

The ROADMAP's heavy-traffic scenario, made concrete: a long-running
process that serves mine requests over JSON/HTTP (stdlib asyncio only)
while keeping every per-invocation cost warm across requests.

* :mod:`repro.service.app` -- :class:`MiningService`, the asyncio
  front-end (``POST /mine``, ``GET /healthz``, ``GET /stats``), and
  :class:`ServiceThread`, the in-process harness tests/benchmarks use.
* :mod:`repro.service.batcher` -- :class:`MicroBatcher`: coalesces
  concurrent requests into ``batch_docs``-sized groups keyed by
  ``(spec, model)``, drives them through one
  :meth:`~repro.engine.corpus.CorpusEngine.mine_documents` call each,
  and finalizes each request's slice separately (responses stay
  bit-identical to a direct ``CorpusEngine.run``).  Bounded queues give
  deterministic 429 + ``Retry-After`` backpressure
  (:class:`ServiceOverloaded`).
* :mod:`repro.service.store` -- :class:`DiskCalibrationCache`: the
  calibration cache with a versioned, fingerprint-checked on-disk tier,
  so a warm restart serves its first calibrated request with zero
  Monte-Carlo trials.
* :mod:`repro.service.protocol` -- the request schema
  (:class:`MineRequest`, :func:`parse_mine_request`) and the minimal
  HTTP framing.
* :mod:`repro.service.client` -- :class:`ServiceClient`, the blocking
  stdlib client.

The CLI front-end is ``repro-mss serve`` (see :mod:`repro.cli`); the
request -> batcher -> pool -> aggregate data flow is documented in
``docs/ARCHITECTURE.md``.
"""

from repro.service.app import MiningService, ServiceThread
from repro.service.batcher import (
    MicroBatcher,
    RequestTooLarge,
    ServiceDraining,
    ServiceOverloaded,
)
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service.protocol import (
    MineRequest,
    ProtocolError,
    parse_mine_request,
)
from repro.service.store import DiskCalibrationCache, default_cache_dir

__all__ = [
    "MiningService",
    "ServiceThread",
    "MicroBatcher",
    "RequestTooLarge",
    "ServiceDraining",
    "ServiceOverloaded",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "MineRequest",
    "ProtocolError",
    "parse_mine_request",
    "DiskCalibrationCache",
    "default_cache_dir",
]
