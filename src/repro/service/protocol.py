"""Wire protocol of the mining service: JSON over a small HTTP/1.1 subset.

Two layers, both stdlib-only:

* **Request parsing** -- :func:`parse_mine_request` turns a decoded
  JSON body into a validated :class:`MineRequest` (documents + a
  :class:`~repro.engine.jobs.JobSpec` + a
  :class:`~repro.core.model.BernoulliModel`).  Everything user-supplied
  is checked here, up front, so a malformed request is rejected with a
  400 *before* it can poison a micro-batch shared with other clients --
  including symbols outside the model's alphabet, which would otherwise
  surface as a mid-batch ``KeyError`` in a worker.
* **HTTP framing** -- :func:`read_request` / :func:`response_bytes`
  implement exactly the slice of HTTP/1.1 the service needs
  (``Content-Length`` framed bodies, keep-alive, no chunked encoding)
  over raw :mod:`asyncio` streams, per the no-new-runtime-deps rule.
  Stdlib clients (``http.client``, hence :class:`~repro.service.client.
  ServiceClient`) speak it natively.

The request JSON schema (all spec fields optional)::

    {"text": "...",            # or "texts": ["...", ...]
     "ids": ["doc-a", ...],    # optional, defaults to doc-0000...
     "problem": "mss" | "top" | "threshold" | "minlength",
     "t": 10, "threshold": 0.0, "min_length": 1, "limit": 100,
     "backend": "numpy" | "python",
     "alphabet": "ab",         # optional, else the service's model
     "probs": [0.5, 0.5],      # optional, else uniform over alphabet
     "correction": "bh" | "bonferroni" | "none",   # optional
     "alpha": 0.05,                                # optional
     "timeout_ms": 2000}       # optional end-to-end deadline
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field

from repro.core.model import BernoulliModel
from repro.engine.corrections import CORRECTIONS
from repro.engine.jobs import JobSpec, MiningJob

__all__ = [
    "MAX_BODY_BYTES",
    "MineRequest",
    "ProtocolError",
    "parse_mine_request",
    "read_request",
    "response_bytes",
    "text_response_bytes",
]

#: Upper bound on a request body; larger posts are rejected with 400.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: JobSpec fields a request may set directly.
_SPEC_FIELDS = ("problem", "t", "threshold", "min_length", "limit", "backend")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """A malformed or unserviceable request (maps to HTTP 400)."""


@dataclass(frozen=True)
class MineRequest:
    """One validated mine request: documents plus mining parameters.

    ``spec`` and ``model`` are both hashable, so ``(spec, model)`` is
    the micro-batcher's coalescing key -- requests agreeing on both can
    share one kernel ``mine_batch`` call.  ``correction``/``alpha`` stay
    per-request (``None`` defers to the engine defaults): the
    multiple-testing correction is applied across *this request's*
    documents only, never across a shared batch.
    """

    ids: tuple[str, ...]
    texts: tuple[str, ...] = field(repr=False)
    spec: JobSpec
    model: BernoulliModel
    correction: str | None = None
    alpha: float | None = None
    #: End-to-end deadline in milliseconds (``None`` = no limit).  The
    #: service stamps a monotonic :class:`~repro.engine.deadline.Deadline`
    #: from it at admission; expired requests are answered 504.
    timeout_ms: int | None = None

    @property
    def docs(self) -> int:
        """How many documents the request carries."""
        return len(self.texts)

    @property
    def tenant_key(self) -> str:
        """Short stable hash of the request's null model.

        Requests sharing an (alphabet, probabilities) pair share a
        tenant key -- the per-tenant accounting handle the access log
        records (and the eventual per-tenant quota layer will key on).
        Deliberately *not* derived from any client identity: the model
        is what distinguishes tenants of a shared mining service.
        """
        payload = json.dumps(
            [
                [str(symbol) for symbol in self.model.alphabet],
                [float(p) for p in self.model.probabilities],
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @property
    def spec_hash(self) -> str:
        """Short stable hash of the job spec (problem + parameters),
        for correlating access-log lines with request shapes."""
        return hashlib.sha256(
            repr(self.spec).encode("utf-8")
        ).hexdigest()[:12]

    def jobs(self) -> list[MiningJob]:
        """The request as engine jobs, in document order."""
        return [
            MiningJob(doc_id, text, self.spec, self.model)
            for doc_id, text in zip(self.ids, self.texts)
        ]


def _parse_texts(payload: dict) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Extract and validate (ids, texts) from a request payload."""
    has_text = "text" in payload
    has_texts = "texts" in payload
    if has_text == has_texts:
        raise ProtocolError("provide exactly one of 'text' or 'texts'")
    if has_text:
        texts = [payload["text"]]
    else:
        texts = payload["texts"]
        if not isinstance(texts, list):
            raise ProtocolError("'texts' must be a list of strings")
    if not texts:
        raise ProtocolError("'texts' is empty; nothing to mine")
    for position, text in enumerate(texts):
        if not isinstance(text, str):
            raise ProtocolError(
                f"document {position} is not a string ({type(text).__name__})"
            )
        if not text:
            raise ProtocolError(f"document {position} is empty")
    ids = payload.get("ids")
    if ids is None:
        ids = [f"doc-{i:04d}" for i in range(len(texts))]
    else:
        if not isinstance(ids, list) or not all(
            isinstance(doc_id, str) for doc_id in ids
        ):
            raise ProtocolError("'ids' must be a list of strings")
        if len(ids) != len(texts):
            raise ProtocolError(
                f"got {len(ids)} ids for {len(texts)} documents"
            )
    return tuple(ids), tuple(texts)


def _parse_model(
    payload: dict, texts: tuple[str, ...], default_model: BernoulliModel | None
) -> BernoulliModel:
    """Build the request's null model (explicit, or the service default)."""
    alphabet = payload.get("alphabet")
    probs = payload.get("probs")
    if alphabet is None:
        if probs is not None:
            raise ProtocolError("'probs' requires 'alphabet'")
        if default_model is None:
            raise ProtocolError(
                "the service has no default model; pass 'alphabet'"
            )
        model = default_model
    else:
        if isinstance(alphabet, list):
            symbols = alphabet
        elif isinstance(alphabet, str):
            symbols = list(alphabet)
        else:
            raise ProtocolError("'alphabet' must be a string or list")
        try:
            if probs is None:
                model = BernoulliModel.uniform(symbols)
            else:
                if not isinstance(probs, list):
                    raise ProtocolError("'probs' must be a list of numbers")
                model = BernoulliModel(symbols, probs)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad model: {exc}") from None
    allowed = set(model.alphabet)
    for position, text in enumerate(texts):
        # Set membership instead of model.encode(): same 400, without
        # allocating a throwaway int64 array per document that the
        # engine would only re-encode at pack time anyway.
        extra = set(text) - allowed
        if extra:
            bad = next(symbol for symbol in text if symbol in extra)
            raise ProtocolError(
                f"document {position}: symbol {bad!r} is not in the "
                f"alphabet {model.alphabet!r}"
            )
    return model


def parse_mine_request(
    payload: object,
    default_model: BernoulliModel | None = None,
    *,
    default_backend: str | None = None,
    default_timeout_ms: int | None = None,
) -> MineRequest:
    """Validate a decoded JSON body into a :class:`MineRequest`.

    Raises :class:`ProtocolError` (an HTTP 400) on anything malformed:
    wrong types, empty documents, unknown spec parameters' values,
    symbols outside the alphabet, probabilities that do not sum to 1,
    non-positive ``timeout_ms``.  ``default_model`` is the
    service-level model used when the request does not bring its own
    ``alphabet``; ``default_backend`` is the service-level kernel
    backend applied when the request does not pick one (``repro-mss
    serve --backend``); ``default_timeout_ms`` likewise backstops
    requests that carry no ``timeout_ms`` (``serve
    --default-timeout-ms``).
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    ids, texts = _parse_texts(payload)
    model = _parse_model(payload, texts, default_model)
    spec_kwargs = {
        name: payload[name] for name in _SPEC_FIELDS if payload.get(name) is not None
    }
    if default_backend is not None:
        spec_kwargs.setdefault("backend", default_backend)
    try:
        spec = JobSpec(**spec_kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad job spec: {exc}") from None
    correction = payload.get("correction")
    if correction is not None and correction not in CORRECTIONS:
        raise ProtocolError(
            f"unknown correction {correction!r}; expected one of {CORRECTIONS}"
        )
    alpha = payload.get("alpha")
    if alpha is not None:
        if not isinstance(alpha, (int, float)) or not 0.0 < alpha < 1.0:
            raise ProtocolError(f"alpha must be in (0, 1), got {alpha!r}")
        alpha = float(alpha)
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is None:
        timeout_ms = default_timeout_ms
    if timeout_ms is not None:
        # bool is an int subclass; `"timeout_ms": true` is still a 400.
        if (
            not isinstance(timeout_ms, int)
            or isinstance(timeout_ms, bool)
            or timeout_ms <= 0
        ):
            raise ProtocolError(
                f"timeout_ms must be a positive integer, got {timeout_ms!r}"
            )
    return MineRequest(
        ids=ids, texts=texts, spec=spec, model=model,
        correction=correction, alpha=alpha, timeout_ms=timeout_ms,
    )


async def read_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter | None = None,
) -> tuple[str, str, dict, bytes] | None:
    """Read one HTTP request; returns (method, target, headers, body).

    Returns ``None`` on a clean end-of-stream (client closed a
    keep-alive connection between requests).  Raises
    :class:`ProtocolError` on anything the subset does not speak:
    over-long headers, missing ``Content-Length`` on bodied methods,
    chunked encoding, oversized bodies.  Header names come back
    lower-cased.  When ``writer`` is given, an ``Expect: 100-continue``
    header is answered with the interim ``100 Continue`` before the body
    is read -- curl sends it for bodies over ~1 KB and would otherwise
    stall for its expect-timeout on every such request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large") from None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer encoding is not supported")
    length = headers.get("content-length", "0")
    try:
        length = int(length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"Content-Length {length} out of range")
    if (
        writer is not None
        and length
        and "100-continue" in headers.get("expect", "").lower()
    ):
        writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        await writer.drain()
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def response_bytes(
    status: int,
    payload: dict,
    *,
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialise one JSON response with correct framing.

    >>> response_bytes(200, {"ok": True}).startswith(b"HTTP/1.1 200 OK\\r\\n")
    True
    """
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def text_response_bytes(
    status: int,
    text: str,
    *,
    content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    keep_alive: bool = True,
) -> bytes:
    """Serialise one plain-text response (the ``GET /metrics`` body).

    The default content type is the Prometheus text exposition format's.

    >>> text_response_bytes(200, "x 1\\n").endswith(b"x 1\\n")
    True
    """
    body = text.encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
