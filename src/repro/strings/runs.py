"""Run-length structure: maximal blocks of identical characters.

The blocking baseline (§2's "blocking technique") evaluates substrings
aligned to run boundaries, and the ARLM/AGMM walk extrema are a typed
subset of the same boundary set.  This module is the shared run-length
substrate: encode, decode, and enumerate boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

__all__ = ["Run", "run_length_encode", "run_length_decode", "run_boundaries"]


@dataclass(frozen=True)
class Run:
    """A maximal block: ``symbol`` repeated over ``[start, start + length)``."""

    symbol: Hashable
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length <= 0:
            raise ValueError(f"invalid run: {self!r}")

    @property
    def end(self) -> int:
        """One past the last position of the run."""
        return self.start + self.length


def run_length_encode(text: Sequence[Hashable]) -> list[Run]:
    """Maximal runs of a sequence, in order.

    >>> [(r.symbol, r.length) for r in run_length_encode("aabbba")]
    [('a', 2), ('b', 3), ('a', 1)]
    """
    runs: list[Run] = []
    start = 0
    for position in range(1, len(text) + 1):
        if position == len(text) or text[position] != text[start]:
            runs.append(Run(symbol=text[start], start=start, length=position - start))
            start = position
    return runs


def run_length_decode(runs: Iterable[Run]) -> list[Hashable]:
    """Inverse of :func:`run_length_encode`.

    >>> "".join(run_length_decode(run_length_encode("aabbba")))
    'aabbba'
    """
    out: list[Hashable] = []
    expected = 0
    for run in runs:
        if run.start != expected:
            raise ValueError(
                f"runs are not contiguous: expected start {expected}, got "
                f"{run.start}"
            )
        out.extend([run.symbol] * run.length)
        expected = run.end
    return out


def run_boundaries(text: Sequence[Hashable]) -> list[int]:
    """All run boundaries including 0 and ``len(text)``.

    >>> run_boundaries("aabbba")
    [0, 2, 5, 6]
    """
    if len(text) == 0:
        return [0]
    boundaries = [0]
    for position in range(1, len(text)):
        if text[position] != text[position - 1]:
            boundaries.append(position)
    boundaries.append(len(text))
    return boundaries
