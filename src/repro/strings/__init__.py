"""Classic string data structures.

Section 2 of the paper discusses -- and rejects -- suffix trees as a route
to fast MSS mining: the X² of a substring needs only its character counts
(O(1) from count arrays), and "due to the complex non-linear nature of
the X² function ... no obvious properties of the suffix trees or its
invariants can be utilized".  We build the structures anyway, for three
reasons:

* the ablation benchmark ``bench_ablation_suffixtree.py`` *measures* the
  §2 argument instead of asserting it (enumerating distinct substrings
  via the suffix structures does not beat scanning with count arrays);
* the run-length view (:mod:`repro.strings.runs`) is the substrate of
  the blocking baseline;
* they are generally useful companions for anyone adopting the library
  for string mining.

Modules: :mod:`repro.strings.suffix_automaton` (linear-time SAM),
:mod:`repro.strings.suffix_tree` (Ukkonen), :mod:`repro.strings.runs`.
"""

from repro.strings.runs import Run, run_length_encode, run_boundaries
from repro.strings.suffix_automaton import SuffixAutomaton
from repro.strings.suffix_tree import SuffixTree

__all__ = [
    "SuffixAutomaton",
    "SuffixTree",
    "Run",
    "run_length_encode",
    "run_boundaries",
]
