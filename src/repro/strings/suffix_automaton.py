"""Suffix automaton (SAM): the minimal DFA of all suffixes.

Built online in O(n log k) by the classic Blumer et al. construction.
Each state represents an equivalence class of substrings sharing the same
set of ending positions; ``len`` of a state is the longest substring in
its class and ``link`` points to the class of its longest proper suffix
with a different ending set.

The automaton answers the questions the suffix-tree discussion of §2
touches: substring membership, number of distinct substrings, and
occurrence counts -- all of which the ablation benchmark exercises when
demonstrating that none of them shortcut the X² optimisation.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

__all__ = ["SuffixAutomaton"]


class _State:
    __slots__ = ("length", "link", "transitions", "occurrences")

    def __init__(self, length: int, link: int) -> None:
        self.length = length
        self.link = link
        self.transitions: dict[Hashable, int] = {}
        self.occurrences = 0


class SuffixAutomaton:
    """Suffix automaton of a sequence.

    >>> sam = SuffixAutomaton("abcbc")
    >>> sam.contains("bcb"), sam.contains("cb"), sam.contains("ca")
    (True, True, False)
    >>> sam.count_distinct_substrings()
    12
    >>> sam.count_occurrences("bc")
    2
    """

    def __init__(self, text: Sequence[Hashable]) -> None:
        if len(text) == 0:
            raise ValueError("cannot build a suffix automaton of an empty string")
        self._states: list[_State] = [_State(0, -1)]
        self._last = 0
        self._n = len(text)
        for symbol in text:
            self._extend(symbol)
        self._propagate_occurrences()

    def _extend(self, symbol: Hashable) -> None:
        states = self._states
        current = len(states)
        states.append(_State(states[self._last].length + 1, -1))
        states[current].occurrences = 1
        p = self._last
        while p != -1 and symbol not in states[p].transitions:
            states[p].transitions[symbol] = current
            p = states[p].link
        if p == -1:
            states[current].link = 0
        else:
            q = states[p].transitions[symbol]
            if states[p].length + 1 == states[q].length:
                states[current].link = q
            else:
                clone = len(states)
                clone_state = _State(states[p].length + 1, states[q].link)
                clone_state.transitions = dict(states[q].transitions)
                states.append(clone_state)
                while p != -1 and states[p].transitions.get(symbol) == q:
                    states[p].transitions[symbol] = clone
                    p = states[p].link
                states[q].link = clone
                states[current].link = clone
        self._last = current

    def _propagate_occurrences(self) -> None:
        # Occurrence counts accumulate along suffix links, processed in
        # decreasing order of state length (a valid topological order).
        order = sorted(range(1, len(self._states)),
                       key=lambda s: self._states[s].length, reverse=True)
        for state in order:
            link = self._states[state].link
            if link > 0:
                self._states[link].occurrences += self._states[state].occurrences

    @property
    def n(self) -> int:
        """Length of the underlying string."""
        return self._n

    @property
    def state_count(self) -> int:
        """Number of automaton states (at most ``2n - 1``)."""
        return len(self._states)

    def _walk(self, pattern: Sequence[Hashable]) -> int | None:
        state = 0
        for symbol in pattern:
            next_state = self._states[state].transitions.get(symbol)
            if next_state is None:
                return None
            state = next_state
        return state

    def contains(self, pattern: Sequence[Hashable]) -> bool:
        """Whether ``pattern`` occurs as a substring."""
        if len(pattern) == 0:
            return True
        return self._walk(pattern) is not None

    def count_occurrences(self, pattern: Sequence[Hashable]) -> int:
        """Number of (possibly overlapping) occurrences of ``pattern``."""
        if len(pattern) == 0:
            return self._n + 1
        state = self._walk(pattern)
        return 0 if state is None else self._states[state].occurrences

    def count_distinct_substrings(self) -> int:
        """Number of distinct non-empty substrings.

        Each state contributes ``len(state) - len(link(state))`` distinct
        substrings.
        """
        total = 0
        for state in self._states[1:]:
            total += state.length - self._states[state.link].length
        return total

    def iter_distinct_substring_lengths(self) -> Iterator[tuple[int, int]]:
        """Yield ``(min_length, max_length)`` per state class.

        The ablation benchmark uses these to enumerate the distinct
        substring classes without materialising the substrings.
        """
        for state in self._states[1:]:
            yield self._states[state.link].length + 1, state.length
