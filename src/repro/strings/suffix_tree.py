"""Suffix tree by Ukkonen's online construction (O(n) for constant alphabets).

Footnote 2 of the paper: "A suffix tree is a data structure that can be
built in theta(n) time.  The power of suffix trees lies in quickly
finding a particular substring of the string."  This is that structure,
with the operations the paper's discussion references: substring search,
leaf counting (occurrence counts), and traversal of the implicit
substring set.  The ablation benchmark uses it to quantify §2's claim
that suffix trees do not accelerate X² mining.

The construction appends a unique terminator so every suffix ends at a
leaf (a true suffix *tree* rather than an implicit one).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

__all__ = ["SuffixTree"]


class _Node:
    __slots__ = ("start", "end", "children", "suffix_link", "leaf_count")

    def __init__(self, start: int, end: int | None) -> None:
        self.start = start          # edge label = text[start:end]
        self.end = end              # None means "to current end" (leaf)
        self.children: dict[Hashable, "_Node"] = {}
        self.suffix_link: "_Node | None" = None
        self.leaf_count = 0


class _Terminator:
    """Unique sentinel guaranteed distinct from every user symbol."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "$"


class SuffixTree:
    """Ukkonen suffix tree of a sequence.

    >>> tree = SuffixTree("banana")
    >>> tree.contains("nan"), tree.contains("nab")
    (True, False)
    >>> tree.count_occurrences("ana")
    2
    >>> tree.count_distinct_substrings()
    15
    """

    def __init__(self, text: Sequence[Hashable]) -> None:
        if len(text) == 0:
            raise ValueError("cannot build a suffix tree of an empty string")
        self._n = len(text)
        self._text: list[Hashable] = list(text) + [_Terminator()]
        self._root = _Node(-1, -1)
        self._build()
        self._count_leaves(self._root)

    # ------------------------------------------------------------------
    # Ukkonen construction
    # ------------------------------------------------------------------

    def _edge_length(self, node: _Node, position: int) -> int:
        end = position + 1 if node.end is None else node.end
        return end - node.start

    def _build(self) -> None:
        text = self._text
        root = self._root
        active_node = root
        active_edge = 0  # index into text of the active edge's first symbol
        active_length = 0
        remainder = 0
        for position, symbol in enumerate(text):
            remainder += 1
            last_internal: _Node | None = None
            while remainder > 0:
                if active_length == 0:
                    active_edge = position
                edge_symbol = text[active_edge]
                child = active_node.children.get(edge_symbol)
                if child is None:
                    leaf = _Node(position, None)
                    active_node.children[edge_symbol] = leaf
                    if last_internal is not None:
                        last_internal.suffix_link = active_node
                        last_internal = None
                else:
                    edge_len = self._edge_length(child, position)
                    if active_length >= edge_len:
                        active_edge += edge_len
                        active_length -= edge_len
                        active_node = child
                        continue
                    if text[child.start + active_length] == symbol:
                        active_length += 1
                        if last_internal is not None:
                            last_internal.suffix_link = active_node
                        break
                    # Split the edge.
                    split = _Node(child.start, child.start + active_length)
                    active_node.children[edge_symbol] = split
                    leaf = _Node(position, None)
                    split.children[symbol] = leaf
                    child.start += active_length
                    split.children[text[child.start]] = child
                    if last_internal is not None:
                        last_internal.suffix_link = split
                    last_internal = split
                remainder -= 1
                if active_node is root and active_length > 0:
                    active_length -= 1
                    active_edge = position - remainder + 1
                elif active_node is not root:
                    active_node = active_node.suffix_link or root

    def _count_leaves(self, node: _Node) -> int:
        if not node.children:
            node.leaf_count = 1
            return 1
        total = 0
        for child in node.children.values():
            total += self._count_leaves(child)
        node.leaf_count = total
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Length of the underlying string (terminator excluded)."""
        return self._n

    def _find_node(self, pattern: Sequence[Hashable]) -> _Node | None:
        """Locate the node at/below which ``pattern`` ends."""
        text = self._text
        node = self._root
        offset = 0
        for symbol in pattern:
            if offset == 0:
                node = node.children.get(symbol)
                if node is None:
                    return None
                offset = node.start
            elif text[offset] != symbol:
                return None
            offset += 1
            end = self._n + 1 if node.end is None else node.end
            if offset == end:
                offset = 0
        return node

    def contains(self, pattern: Sequence[Hashable]) -> bool:
        """Whether ``pattern`` occurs as a substring (O(|pattern|))."""
        if len(pattern) == 0:
            return True
        return self._find_node(pattern) is not None

    def count_occurrences(self, pattern: Sequence[Hashable]) -> int:
        """Number of occurrences of ``pattern`` (leaves below its locus)."""
        if len(pattern) == 0:
            return self._n + 1
        node = self._find_node(pattern)
        return 0 if node is None else node.leaf_count

    def count_distinct_substrings(self) -> int:
        """Distinct non-empty substrings (edge lengths, terminator pruned)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                end = self._n + 1 if child.end is None else child.end
                length = end - child.start
                # Terminator-only edges contribute nothing; edges ending
                # with the terminator contribute one symbol less.
                if child.end is None:
                    length -= 1
                total += length
                stack.append(child)
        return total

    def iter_occurrences(self, pattern: Sequence[Hashable]) -> Iterator[int]:
        """Start positions of ``pattern``, via leaf depths.

        >>> sorted(SuffixTree("banana").iter_occurrences("an"))
        [1, 3]
        """
        if len(pattern) == 0:
            yield from range(self._n + 1)
            return
        # Straightforward and robust: collect leaves under the locus by
        # tracking string depth from the root.
        results: list[int] = []

        def descend(node: _Node, depth: int, on_path: bool, matched: int) -> None:
            for child in node.children.values():
                end = self._n + 1 if child.end is None else child.end
                edge_symbols = self._text[child.start : end]
                new_matched = matched
                good = on_path
                if good and matched < len(pattern):
                    for symbol in edge_symbols:
                        if new_matched >= len(pattern):
                            break
                        if symbol != pattern[new_matched]:
                            good = False
                            break
                        new_matched += 1
                if not good:
                    continue
                new_depth = depth + (end - child.start)
                if not child.children:
                    if new_matched >= len(pattern):
                        results.append(self._n + 1 - new_depth)
                else:
                    descend(child, new_depth, True, new_matched)

        descend(self._root, 0, True, 0)
        yield from sorted(results)
