"""A circuit breaker around the shared-memory worker pool.

Before this module, a broken :class:`~repro.engine.shm.WorkerPool` was
rediscovered the hard way on *every* request: publish the corpus to
shared memory, submit chunks, watch the pool break, fall back serially,
restart the pool, repeat.  Under a persistent fault (a worker that
crashes on start, cgroup memory pressure, a poisoned interpreter) that
is pure overhead with no path to recovery.

:class:`PoolSupervisor` is a classic three-state breaker:

* ``closed`` -- healthy; every chunk may go to the pool.
* ``open`` -- after ``failure_threshold`` consecutive runs with
  fallbacks or a broken pool, stop using the pool entirely (serial
  mining, no restart attempts) for ``cooldown_seconds``.
* ``half_open`` -- after the cooldown, allow exactly **one probe
  chunk** through; success closes the breaker, failure reopens it and
  restarts the cooldown.

The executor asks :meth:`allow` how many chunks may use the pool and
reports the outcome via :meth:`record_run`; the service surfaces
:meth:`status` in ``/healthz`` (``"degraded"`` while not closed) and
the numeric :meth:`state_code` as the ``repro_pool_breaker_state``
gauge.  The clock is injectable so tests drive cooldowns without
sleeping.

Examples
--------
>>> supervisor = PoolSupervisor(failure_threshold=2, cooldown_seconds=30)
>>> supervisor.allow(4)
4
>>> supervisor.record_run(used_pool=True, fallback_chunks=1)
>>> supervisor.record_run(used_pool=True, fallback_chunks=2)
>>> supervisor.state
'open'
>>> supervisor.allow(4)
0
"""

from __future__ import annotations

import threading
import time

__all__ = ["PoolSupervisor"]

from ..obs.log import get_logger

#: ``repro_pool_breaker_state`` gauge values, one per state.
_STATE_CODES = {"closed": 0, "open": 1, "half_open": 2}


class PoolSupervisor:
    """Circuit breaker state machine for a worker pool (see module doc).

    Thread-safe; all transitions happen under one lock.  ``clock`` is
    any zero-argument callable returning monotonic seconds.
    ``on_transition(old_state, new_state, reason)`` is invoked (outside
    the lock) on every state change -- the executor uses it to bump the
    transition counter on whatever metrics registry it holds *at that
    moment*, which matters because services inject their registry after
    construction.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._opened_total = 0
        self._reason = ""
        self._log = get_logger("repro.engine.supervisor")

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (cooldown-aware).

        Reading the state while an open breaker's cooldown has elapsed
        reports ``half_open`` -- the transition itself still happens in
        :meth:`allow`, where the probe budget is granted.
        """
        with self._lock:
            if (
                self._state == "open"
                and self.clock() - self._opened_at >= self.cooldown_seconds
            ):
                return "half_open"
            return self._state

    def state_code(self) -> int:
        """The gauge encoding: 0 closed, 1 open, 2 half-open."""
        return _STATE_CODES[self.state]

    def allow(self, n_chunks: int) -> int:
        """How many of ``n_chunks`` may be dispatched to the pool.

        Closed: all of them.  Open: zero until the cooldown elapses,
        then the breaker half-opens and grants one probe chunk.
        Half-open: one probe chunk.
        """
        transition = None
        with self._lock:
            if self._state == "open":
                if self.clock() - self._opened_at >= self.cooldown_seconds:
                    transition = (self._state, "half_open", "cooldown elapsed")
                    self._state = "half_open"
                else:
                    return 0
            if self._state == "half_open":
                budget = min(1, n_chunks)
            else:
                budget = n_chunks
        if transition is not None:
            self._notify(*transition)
        return budget

    def record_run(
        self, *, used_pool: bool, fallback_chunks: int = 0
    ) -> None:
        """Report one executor run's outcome.

        A run that used the pool with zero fallbacks is a success and
        closes the breaker (resetting the failure streak).  A run with
        fallbacks or a broken pool is a failure: it reopens a half-open
        breaker immediately, and opens a closed one once the streak
        reaches ``failure_threshold``.  Runs that never touched the
        pool (single chunk, breaker open) carry no signal.
        """
        if not used_pool:
            return
        transition = None
        with self._lock:
            if fallback_chunks > 0:
                self._consecutive_failures += 1
                reason = (
                    f"{fallback_chunks} chunk(s) fell back in-process "
                    f"(streak {self._consecutive_failures})"
                )
                if self._state == "half_open":
                    transition = (self._state, "open", "probe failed")
                    self._open(reason="probe chunk failed")
                elif (
                    self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold
                ):
                    transition = (self._state, "open", reason)
                    self._open(reason=reason)
            else:
                self._consecutive_failures = 0
                if self._state != "closed":
                    transition = (self._state, "closed", "probe succeeded")
                    self._state = "closed"
                    self._reason = ""
        if transition is not None:
            self._notify(*transition)

    def _open(self, *, reason: str) -> None:
        """Enter ``open`` (caller holds the lock)."""
        self._state = "open"
        self._opened_at = self.clock()
        self._opened_total += 1
        self._reason = reason

    def _notify(self, old: str, new: str, reason: str) -> None:
        self._log.warning(
            "breaker_transition", old_state=old, new_state=new, reason=reason
        )
        if self.on_transition is not None:
            try:
                self.on_transition(old, new, reason)
            except Exception:  # pragma: no cover - observer must not break mining
                pass

    def status(self) -> dict:
        """JSON-ready state for ``/healthz``.

        >>> sorted(PoolSupervisor().status())
        ['consecutive_failures', 'cooldown_remaining_seconds', \
'cooldown_seconds', 'failure_threshold', 'opened_total', 'reason', 'state']
        """
        state = self.state
        with self._lock:
            remaining = 0.0
            if self._state == "open":
                remaining = max(
                    0.0,
                    self.cooldown_seconds - (self.clock() - self._opened_at),
                )
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "cooldown_remaining_seconds": round(remaining, 3),
                "opened_total": self._opened_total,
                "reason": self._reason,
            }

    def __repr__(self) -> str:
        return (
            f"PoolSupervisor(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
