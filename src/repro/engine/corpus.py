"""The corpus engine: mine many documents concurrently, report corrected
significance.

This is the throughput layer the paper's motivating applications need:
intrusion detection over many sessions, market monitoring over many
tickers, sports analysis over many series -- all under one shared null
model.  :class:`CorpusEngine` takes a batch of
:class:`~repro.engine.jobs.MiningJob` values and

1. fans them out through a pluggable executor
   (:mod:`repro.engine.executors`) -- serial, thread pool, or process
   pool with chunked dispatch;
2. optionally replaces each document's asymptotic p-value with the
   Monte-Carlo family-wise p-value from a shared
   :class:`~repro.engine.calibration.CalibrationCache` (one simulation
   per (model, length-bucket), not per document);
3. applies a multiple-testing correction (Bonferroni or
   Benjamini-Hochberg) across the corpus and flags the significant
   documents;
4. returns a :class:`CorpusResult`: per-document results in input order
   plus an aggregate :class:`~repro.core.results.ScanStats`.

Parallel executors are guaranteed to produce the same per-document
results as :class:`~repro.engine.executors.SerialExecutor` -- mining is
deterministic and executors preserve input order -- so parallelism is a
pure throughput knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.core.model import BernoulliModel
from repro.core.results import ScanStats
from repro.engine.calibration import CalibrationCache
from repro.engine.corrections import CORRECTIONS, adjust_p_values
from repro.engine.executors import SerialExecutor
from repro.engine.jobs import (
    DocumentResult,
    JobSpec,
    MiningJob,
    run_job,
    run_job_batch,
)
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["CorpusEngine", "CorpusResult"]


def _validate_batch_docs(batch_docs: int | None) -> int | None:
    if batch_docs is None:
        return None
    if (
        not isinstance(batch_docs, int)
        or isinstance(batch_docs, bool)
        or batch_docs < 1
    ):
        raise ValueError(
            f"batch_docs must be a positive int or None, got {batch_docs!r}"
        )
    return batch_docs


@dataclass
class CorpusResult:
    """Everything a corpus run produced.

    ``documents`` preserves job submission order; ``stats`` merges every
    document's work counters (``stats.elapsed_seconds`` is summed scan
    time across workers, ``elapsed_seconds`` is the run's wall time).
    """

    documents: list[DocumentResult]
    stats: ScanStats
    correction: str
    alpha: float
    calibrated: bool
    executor: str = "serial"
    workers: int = 1
    batch_docs: int | None = None
    elapsed_seconds: float = 0.0
    calibration_summary: dict | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    @property
    def significant(self) -> list[DocumentResult]:
        """Documents whose corrected p-value clears ``alpha``."""
        return [doc for doc in self.documents if doc.significant]

    @property
    def n_significant(self) -> int:
        """How many documents survived the correction."""
        return len(self.significant)

    @property
    def docs_per_second(self) -> float:
        """Wall-clock corpus throughput."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.documents) / self.elapsed_seconds

    def payload(self, *, include_timing: bool = True) -> dict:
        """JSON-ready dict of the whole run (CLI ``--json`` output)."""
        data: dict = {
            "documents": len(self.documents),
            "total_symbols": self.stats.n,
            "evaluated": self.stats.substrings_evaluated,
            "skipped": self.stats.positions_skipped,
            "correction": self.correction,
            "alpha": self.alpha,
            "calibrated": self.calibrated,
            "significant": self.n_significant,
            "executor": self.executor,
            "workers": self.workers,
            "batch_docs": self.batch_docs,
            "results": [
                doc.payload(include_timing=include_timing)
                for doc in self.documents
            ],
        }
        if self.calibration_summary is not None:
            data["calibration"] = self.calibration_summary
        if include_timing:
            data["elapsed_seconds"] = self.elapsed_seconds
            data["scan_seconds"] = self.stats.elapsed_seconds
        return data

    def __repr__(self) -> str:
        return (
            f"CorpusResult(documents={len(self.documents)}, "
            f"significant={self.n_significant}, correction={self.correction!r}, "
            f"alpha={self.alpha}, executor={self.executor!r})"
        )


class CorpusEngine:
    """Mine a corpus of documents through a pluggable executor.

    Parameters
    ----------
    executor:
        Any object with ``map(fn, items) -> list`` preserving input
        order (see :mod:`repro.engine.executors`).  Defaults to
        :class:`SerialExecutor`.
    calibration:
        A :class:`CalibrationCache` to turn each document's X²max into a
        Monte-Carlo family-wise p-value.  ``None`` keeps the asymptotic
        chi-square p-value of the best substring (fast, but overstates
        significance -- see :mod:`repro.analysis.calibration`).
    correction:
        Default multiple-testing correction: ``"bonferroni"``, ``"bh"``
        or ``"none"``.
    alpha:
        Default corpus-level significance level.
    batch_docs:
        When set, documents are mined ``batch_docs`` at a time through
        one kernel ``mine_batch`` call per batch
        (:func:`~repro.engine.jobs.run_job_batch`) instead of one call
        per document -- the executor then fans out batches, not
        documents.  Results are identical either way (enforced by the
        engine tests); per-document kernel dispatch is amortised, which
        is a large serial win on corpora of small documents (see
        ``benchmarks/bench_engine_scaling.py``).  ``None`` (default)
        keeps per-document dispatch.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` mine/finalize
        timings and document counts are reported into.  ``None`` (the
        default) uses the process-wide
        :func:`~repro.obs.metrics.default_registry`; a service injects
        its own so ``/metrics`` reflects only that service's work.

    Examples
    --------
    >>> model = BernoulliModel.uniform("ab")
    >>> texts = ["ab" * 30, "ab" * 10 + "a" * 14 + "ba" * 8, "ba" * 30]
    >>> engine = CorpusEngine()
    >>> result = engine.run_texts(texts, model)
    >>> len(result.documents)
    3
    >>> [round(d.x2_max, 1) for d in result.documents][1] > 10
    True
    >>> result.documents[0].doc_id
    'doc-0000'
    """

    def __init__(
        self,
        executor=None,
        calibration: CalibrationCache | None = None,
        correction: str = "bh",
        alpha: float = 0.05,
        batch_docs: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if correction not in CORRECTIONS:
            raise ValueError(
                f"unknown correction {correction!r}; expected one of {CORRECTIONS}"
            )
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.executor = executor if executor is not None else SerialExecutor()
        self.calibration = calibration
        self.correction = correction
        self.alpha = alpha
        self.batch_docs = _validate_batch_docs(batch_docs)
        self.metrics = metrics if metrics is not None else default_registry()

    def run(
        self,
        jobs: Iterable[MiningJob],
        *,
        correction: str | None = None,
        alpha: float | None = None,
        batch_docs: int | None = None,
    ) -> CorpusResult:
        """Mine every job; correct p-values across the corpus.

        Results come back in job order regardless of executor (and of
        ``batch_docs``).  Per-call ``correction``/``alpha``/
        ``batch_docs`` override the engine defaults.

        ``run`` is :meth:`mine_documents` followed by :meth:`finalize`;
        callers that need to mine several request's jobs through one
        executor pass (the service micro-batcher,
        :mod:`repro.service.batcher`) call the two halves themselves.
        """
        job_list = list(jobs)
        correction, alpha = self._resolve_correction(correction, alpha)
        batch_docs = (
            self.batch_docs if batch_docs is None
            else _validate_batch_docs(batch_docs)
        )
        started = time.perf_counter()
        documents = self.mine_documents(job_list, batch_docs=batch_docs)
        result = self.finalize(
            job_list,
            documents,
            correction=correction,
            alpha=alpha,
            batch_docs=batch_docs,
        )
        # Stamp after finalize so calibration (potentially a cold
        # Monte-Carlo simulation) stays inside the reported wall time,
        # exactly as before the mine/finalize split.
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def mine_documents(
        self,
        jobs: Sequence[MiningJob],
        *,
        batch_docs: int | None = None,
    ) -> list[DocumentResult]:
        """The dispatch half of :meth:`run`: mine only, no corrections.

        Returns per-document results in job order with *asymptotic*
        p-values -- calibration and multiple-testing correction are
        :meth:`finalize`'s job.  Per-document results are deterministic
        and independent of how jobs are grouped, so a caller may mine
        the concatenation of several requests' jobs in one call and
        :meth:`finalize` each request's slice separately with results
        bit-identical to running each request alone (enforced by
        ``tests/service/test_service.py``).
        """
        job_list = list(jobs)
        if not job_list:
            raise ValueError("no jobs to run")
        batch_docs = (
            self.batch_docs if batch_docs is None
            else _validate_batch_docs(batch_docs)
        )
        started = time.perf_counter()
        try:
            if hasattr(self.executor, "run_jobs"):
                # Corpus-owning executors (the shared-memory path) take
                # the whole job list: they pack documents into shared
                # memory up front and pick their own chunking when
                # batch_docs is None.
                return self.executor.run_jobs(job_list, batch_docs=batch_docs)
            if batch_docs is None:
                return self.executor.map(run_job, job_list)
            chunks = [
                job_list[i : i + batch_docs]
                for i in range(0, len(job_list), batch_docs)
            ]
            return [
                doc
                for chunk in self.executor.map(run_job_batch, chunks)
                for doc in chunk
            ]
        finally:
            self.metrics.histogram(
                "repro_engine_mine_seconds",
                "Wall seconds per mine_documents pass",
            ).observe(time.perf_counter() - started)
            self.metrics.counter(
                "repro_engine_docs_mined_total",
                "Documents mined by the engine",
            ).inc(len(job_list))

    def finalize(
        self,
        jobs: Sequence[MiningJob],
        documents: Sequence[DocumentResult],
        *,
        correction: str | None = None,
        alpha: float | None = None,
        batch_docs: int | None = None,
        elapsed: float = 0.0,
    ) -> CorpusResult:
        """The significance half of :meth:`run`: calibrate and correct.

        Replaces each document's asymptotic p-value with the calibrated
        family-wise one (when the engine has a
        :class:`~repro.engine.calibration.CalibrationCache`), applies
        the multiple-testing correction *across exactly the documents
        given*, and assembles the :class:`CorpusResult`.  The
        ``documents`` are mutated in place (``p_value`` /
        ``p_corrected`` / ``significant``), mirroring what :meth:`run`
        does; ``jobs`` must be the matching job list (calibration needs
        each document's model).  ``elapsed`` is the wall time reported
        on the result.
        """
        finalize_started = time.perf_counter()
        job_list = list(jobs)
        documents = list(documents)
        if len(job_list) != len(documents):
            raise ValueError(
                f"got {len(documents)} documents for {len(job_list)} jobs"
            )
        correction, alpha = self._resolve_correction(correction, alpha)
        if self.calibration is not None:
            for job, doc in zip(job_list, documents):
                doc.p_value = self.calibration.p_value(job.model, doc.n, doc.x2_max)
                doc.p_value_kind = "calibrated"

        adjusted = adjust_p_values([doc.p_value for doc in documents], correction)
        for doc, p_adj in zip(documents, adjusted):
            doc.p_corrected = p_adj
            doc.significant = p_adj <= alpha

        result = CorpusResult(
            documents=documents,
            stats=ScanStats.merged(doc.stats for doc in documents),
            correction=correction,
            alpha=alpha,
            calibrated=self.calibration is not None,
            executor=getattr(self.executor, "name", type(self.executor).__name__),
            workers=getattr(self.executor, "workers", 1),
            batch_docs=batch_docs,
            elapsed_seconds=elapsed,
            calibration_summary=(
                self.calibration.summary() if self.calibration is not None else None
            ),
        )
        self.metrics.histogram(
            "repro_engine_finalize_seconds",
            "Wall seconds per finalize pass (calibration + correction)",
        ).observe(time.perf_counter() - finalize_started)
        return result

    def _resolve_correction(
        self, correction: str | None, alpha: float | None
    ) -> tuple[str, float]:
        """Apply engine defaults and validate a correction/alpha pair."""
        correction = self.correction if correction is None else correction
        alpha = self.alpha if alpha is None else alpha
        if correction not in CORRECTIONS:
            raise ValueError(
                f"unknown correction {correction!r}; expected one of {CORRECTIONS}"
            )
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        return correction, alpha

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent.

        A persistent :class:`~repro.engine.shm.SharedMemoryExecutor`
        keeps its process pool alive across runs -- this is how a
        long-running service lets it go.  Executors without a ``close``
        (serial, thread) make this a no-op, and the engine stays usable
        either way (pools restart lazily on the next run).
        """
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "CorpusEngine":
        """Context-manager entry: returns the engine itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the engine."""
        self.close()

    def run_texts(
        self,
        texts: Sequence[Sequence[Hashable]],
        model: BernoulliModel,
        spec: JobSpec | None = None,
        *,
        ids: Sequence[str] | None = None,
        correction: str | None = None,
        alpha: float | None = None,
        batch_docs: int | None = None,
    ) -> CorpusResult:
        """Convenience wrapper: one shared model + spec over raw texts.

        ``ids`` defaults to ``doc-0000, doc-0001, ...`` in input order.
        """
        spec = spec if spec is not None else JobSpec()
        if ids is None:
            ids = [f"doc-{i:04d}" for i in range(len(texts))]
        elif len(ids) != len(texts):
            raise ValueError(
                f"got {len(ids)} ids for {len(texts)} texts"
            )
        jobs = [
            MiningJob(doc_id, text, spec, model)
            for doc_id, text in zip(ids, texts)
        ]
        return self.run(
            jobs, correction=correction, alpha=alpha, batch_docs=batch_docs
        )

    def __repr__(self) -> str:
        return (
            f"CorpusEngine(executor={self.executor!r}, "
            f"calibration={self.calibration!r}, "
            f"correction={self.correction!r}, alpha={self.alpha}, "
            f"batch_docs={self.batch_docs})"
        )
