"""Mining jobs: one document, one problem, one shared null model.

The corpus engine decomposes a workload into :class:`MiningJob` values --
each pairs a document with a :class:`JobSpec` (which of the paper's four
problems to run, and its parameters) and the corpus-wide
:class:`~repro.core.model.BernoulliModel`.  Jobs are plain picklable
dataclasses so they can be shipped to worker processes unchanged, and
:func:`run_job` is a module-level function so ``ProcessPoolExecutor`` can
dispatch it.

The per-document outcome is a :class:`DocumentResult`: the mined
substrings, the scan's work counters, and a per-document p-value that the
engine later replaces (Monte-Carlo calibration) and corrects
(Bonferroni / Benjamini-Hochberg) at the corpus level.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.counts import PrefixCountIndex
from repro.core.minlength import find_mss_min_length
from repro.core.model import BernoulliModel
from repro.core.mss import find_mss
from repro.core.results import ScanStats, SignificantSubstring
from repro.core.threshold import find_above_threshold
from repro.core.topt import find_top_t

__all__ = [
    "PROBLEMS",
    "JobSpec",
    "MiningJob",
    "DocumentResult",
    "ordered_scan",
    "run_job",
    "run_job_batch",
]

#: The paper's four problems, by CLI/API name.
PROBLEMS = ("mss", "top", "threshold", "minlength")


@dataclass(frozen=True)
class JobSpec:
    """Which problem to run on each document, with its parameters.

    Parameters
    ----------
    problem:
        One of ``"mss"`` (Problem 1), ``"top"`` (Problem 2),
        ``"threshold"`` (Problem 3), ``"minlength"`` (Problem 4).
    t:
        Top-``t`` size (``"top"`` only).
    threshold:
        The X² cut-off (``"threshold"`` only).
    min_length:
        Inclusive length floor (``"minlength"`` only).
    limit:
        Cap on reported substrings (``"threshold"`` only).
    backend:
        Kernel backend *name* (see :mod:`repro.kernels`); ``None``
        defers to ``REPRO_BACKEND`` / the default.  Kept as a string so
        jobs stay picklable and each worker process resolves its own
        backend instance.

    Examples
    --------
    >>> JobSpec().problem
    'mss'
    >>> JobSpec(problem="top", t=3)
    JobSpec(problem='top', t=3)
    >>> JobSpec(problem="episode")
    Traceback (most recent call last):
        ...
    ValueError: unknown problem 'episode'; expected one of ('mss', 'top', 'threshold', 'minlength')
    """

    problem: str = "mss"
    t: int = 10
    threshold: float = 0.0
    min_length: int = 1
    limit: int | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.problem not in PROBLEMS:
            raise ValueError(
                f"unknown problem {self.problem!r}; expected one of {PROBLEMS}"
            )
        if self.problem == "top" and self.t < 1:
            raise ValueError(f"t must be >= 1, got {self.t!r}")
        if self.problem == "threshold" and self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold!r}")
        if self.problem == "minlength" and self.min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {self.min_length!r}")
        if (
            self.problem == "threshold"
            and self.limit is not None
            and self.limit <= 0
        ):
            raise ValueError(
                f"limit must be positive when given, got {self.limit!r}"
            )
        if self.backend is not None and not isinstance(self.backend, str):
            raise TypeError(
                f"backend must be a registered backend name (str) or None, "
                f"got {self.backend!r}"
            )

    def mine(
        self, text: Sequence[Hashable], model: BernoulliModel
    ) -> tuple[list[SignificantSubstring], ScanStats, bool]:
        """Run the configured problem on one document.

        Returns ``(substrings desc by X², stats, truncated)``.
        ``truncated`` is True when a threshold scan stopped at ``limit``
        before exhausting the document -- the reported substrings (and
        hence the document's X²max) may then understate the true
        optimum.  A ``minlength`` job on a document shorter than the
        floor returns no substrings: nothing in that document satisfies
        the constraint, which is an answer, not an error.
        """
        if self.problem == "mss":
            result = find_mss(text, model, backend=self.backend)
            return [result.best], result.stats, False
        if self.problem == "top":
            n = len(text)
            t = min(self.t, n * (n + 1) // 2)
            result = find_top_t(text, model, t, backend=self.backend)
            return list(result.substrings), result.stats, False
        if self.problem == "threshold":
            result = find_above_threshold(
                text, model, self.threshold, limit=self.limit,
                backend=self.backend,
            )
            return list(result.substrings), result.stats, result.truncated
        if self.min_length > len(text):
            return [], ScanStats(n=len(text)), False
        result = find_mss_min_length(
            text, model, self.min_length, backend=self.backend
        )
        return [result.best], result.stats, False

    def __repr__(self) -> str:
        parts = [f"problem={self.problem!r}"]
        if self.problem == "top":
            parts.append(f"t={self.t}")
        elif self.problem == "threshold":
            parts.append(f"threshold={self.threshold}")
            if self.limit is not None:
                parts.append(f"limit={self.limit}")
        elif self.problem == "minlength":
            parts.append(f"min_length={self.min_length}")
        if self.backend is not None:
            parts.append(f"backend={self.backend!r}")
        return f"JobSpec({', '.join(parts)})"


@dataclass(frozen=True)
class MiningJob:
    """One unit of corpus work: a document under a shared null model.

    Examples
    --------
    >>> model = BernoulliModel.uniform("ab")
    >>> job = MiningJob("doc-0", "abab" + "aaaa" + "bab", JobSpec(), model)
    >>> run_job(job).best.slice(job.text)
    'aaaa'
    """

    doc_id: str
    text: Sequence[Hashable]
    spec: JobSpec
    model: BernoulliModel

    def __post_init__(self) -> None:
        if len(self.text) == 0:
            raise ValueError(f"document {self.doc_id!r} is empty")


@dataclass
class DocumentResult:
    """Per-document mining outcome, before and after corpus correction.

    ``p_value`` starts as the asymptotic chi-square p-value of the
    document's X²max (the significance of one *fixed* substring) and is
    replaced by the engine with a Monte-Carlo calibrated family-wise
    p-value when calibration is enabled.  ``p_corrected`` and
    ``significant`` are filled in by the engine's multiple-testing
    correction across the whole corpus.
    """

    doc_id: str
    n: int
    substrings: tuple[SignificantSubstring, ...]
    stats: ScanStats
    p_value: float
    p_value_kind: str = "asymptotic"
    p_corrected: float | None = None
    significant: bool | None = None
    truncated: bool = False

    @property
    def best(self) -> SignificantSubstring | None:
        """The document's most significant substring (None when a
        threshold scan matched nothing)."""
        return self.substrings[0] if self.substrings else None

    @property
    def x2_max(self) -> float:
        """The document's maximum *reported* X² (0.0 when nothing matched).

        Exact for mss/top/minlength; a lower bound when ``truncated``.
        """
        return self.substrings[0].chi_square if self.substrings else 0.0

    def payload(self, *, include_timing: bool = True) -> dict:
        """JSON-ready dict; ``include_timing=False`` drops wall-clock noise
        so serial and parallel runs compare byte-identically."""
        data: dict = {
            "doc_id": self.doc_id,
            "n": self.n,
            "x2_max": self.x2_max,
            "p_value": self.p_value,
            "p_value_kind": self.p_value_kind,
            "p_corrected": self.p_corrected,
            "significant": self.significant,
            "truncated": self.truncated,
            "evaluated": self.stats.substrings_evaluated,
            "skipped": self.stats.positions_skipped,
            "substrings": [
                {
                    "start": s.start,
                    "end": s.end,
                    "length": s.length,
                    "chi_square": s.chi_square,
                    "counts": list(s.counts),
                }
                for s in self.substrings
            ],
        }
        if include_timing:
            data["elapsed_seconds"] = self.stats.elapsed_seconds
        return data


def run_job(job: MiningJob) -> DocumentResult:
    """Mine one job (module-level so process pools can pickle it)."""
    substrings, stats, truncated = job.spec.mine(job.text, job.model)
    best_p = substrings[0].p_value if substrings else 1.0
    return DocumentResult(
        doc_id=job.doc_id,
        n=stats.n,
        substrings=tuple(substrings),
        stats=stats,
        p_value=best_p,
        truncated=truncated,
    )


def ordered_scan(spec, raw, n):
    """Normalise a raw ``mine_batch`` tuple into result order.

    Returns ``(found, start_positions, truncated, evaluated, skipped)``
    where ``found`` lists ``(x2, start, end)`` in the order the ``find_*``
    wrappers report substrings: sentinel entries filtered, sorted by
    ``(-X², start)`` for top-t and threshold scans, the single best pair
    for mss / minlength.  This is the one place that ordering rule
    lives -- :func:`run_job_batch` and the shared-memory workers
    (:mod:`repro.engine.shm`) both build their
    :class:`DocumentResult` values from it, which is what keeps the two
    paths bit-identical.
    """
    problem = spec.problem
    truncated = False
    if problem in ("mss", "minlength"):
        best, (start, end), evaluated, skipped = raw
        found = [(best, start, end)]
        start_positions = n if problem == "mss" else n - spec.min_length + 1
    elif problem == "top":
        heap, evaluated, skipped = raw
        found = [entry for entry in heap if entry[1] >= 0]
        found.sort(key=lambda entry: (-entry[0], entry[1]))
        start_positions = n
    else:  # threshold
        found, _match_count, truncated, evaluated, skipped = raw
        found = sorted(found, key=lambda entry: (-entry[0], entry[1]))
        start_positions = n
    return found, start_positions, truncated, evaluated, skipped


def _document_from_scan(job, index, spec, raw, elapsed):
    """Build a :class:`DocumentResult` from a raw ``mine_batch`` tuple.

    Mirrors exactly what the ``find_*`` wrappers (and hence
    :func:`run_job`) do with the same kernel output: sentinel filtering,
    the ``(-X², start)`` result ordering, counter placement, and the
    document p-value rule.  ``elapsed`` is this document's share of the
    batched kernel call's wall time.
    """
    model = job.model
    n = index.n
    found, start_positions, truncated, evaluated, skipped = ordered_scan(
        spec, raw, n
    )
    substrings = tuple(
        SignificantSubstring(
            start=start,
            end=end,
            chi_square=x2,
            counts=index.counts(start, end),
            alphabet_size=model.k,
        )
        for x2, start, end in found
    )
    stats = ScanStats(
        n=n,
        substrings_evaluated=evaluated,
        positions_skipped=skipped,
        start_positions=start_positions,
        elapsed_seconds=elapsed,
    )
    return DocumentResult(
        doc_id=job.doc_id,
        n=n,
        substrings=substrings,
        stats=stats,
        p_value=substrings[0].p_value if substrings else 1.0,
        truncated=truncated,
    )


def run_job_batch(jobs: Sequence[MiningJob]) -> list[DocumentResult]:
    """Mine a chunk of jobs with one kernel call per (spec, model) group.

    The engine's batched path: consecutive jobs sharing a spec and model
    (the common case -- :meth:`CorpusEngine.run_texts` corpora share one
    of each) are encoded, indexed, and handed to the backend's
    ``mine_batch`` as a single call, amortising per-document kernel
    dispatch.  Module-level so process pools can pickle it.

    The results are identical to ``[run_job(job) for job in jobs]`` --
    scores, intervals, counters and orderings, enforced by the engine
    test-suite -- except for ``stats.elapsed_seconds``, which becomes
    each document's even share of its batch's kernel wall time (the
    per-document split of one fused call is unobservable).

    ``minlength`` documents shorter than the floor never reach the
    kernel: as in :meth:`JobSpec.mine`, an empty result is the answer.
    """
    from repro.kernels import get_backend

    results: list[DocumentResult] = []
    for (spec, model), group_iter in itertools.groupby(
        jobs, key=lambda job: (job.spec, job.model)
    ):
        group = list(group_iter)
        out: list[DocumentResult | None] = [None] * len(group)
        pending: list[tuple[int, MiningJob, PrefixCountIndex]] = []
        for pos, job in enumerate(group):
            codes = model.encode(job.text)
            n = len(codes)
            if spec.problem == "minlength" and spec.min_length > n:
                out[pos] = DocumentResult(
                    doc_id=job.doc_id,
                    n=n,
                    substrings=(),
                    stats=ScanStats(n=n),
                    p_value=1.0,
                    truncated=False,
                )
            else:
                pending.append((pos, job, PrefixCountIndex(codes, model.k)))
        if pending:
            kernel = get_backend(spec.backend)
            indexes = [index for _, _, index in pending]
            started = time.perf_counter()
            raws = kernel.mine_batch(indexes, model, spec)
            share = (time.perf_counter() - started) / len(pending)
            for (pos, job, index), raw in zip(pending, raws):
                out[pos] = _document_from_scan(job, index, spec, raw, share)
        results.extend(out)
    return results
