"""Pluggable executors: how the corpus engine fans jobs out.

Four strategies.  Three share the two-method interface (``map`` +
``name``):

* :class:`SerialExecutor` -- in-process loop; zero overhead, the
  reference for correctness (parallel executors must match it exactly).
* :class:`ThreadExecutor` -- ``concurrent.futures.ThreadPoolExecutor``;
  useful when the scan cost is dominated by numpy releases of the GIL
  or when process startup is too expensive for the corpus size.
* :class:`ProcessExecutor` -- ``concurrent.futures.ProcessPoolExecutor``
  with *chunked* dispatch: documents are shipped ``chunksize`` at a time
  so per-task pickling overhead amortises over many small documents.

The fourth, :class:`~repro.engine.shm.SharedMemoryExecutor`
(re-exported here), replaces per-job pickling with a zero-copy
shared-memory corpus and is the executor that actually *wins* on
multi-core hosts -- it exposes ``run_jobs(jobs)`` and the engine hands
it the whole job list instead of mapping a function.

All of them preserve input order, so results are deterministic
regardless of completion order -- the engine's serial/parallel parity
guarantee rests on this.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
from typing import Callable, Iterable, Sequence, TypeVar

from repro.engine.shm import SharedMemoryExecutor, WorkerPool

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "WorkerPool",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")


def _default_workers() -> int:
    return os.cpu_count() or 1


class SerialExecutor:
    """Run every job in the calling process, in order.

    >>> SerialExecutor().map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    """

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving order."""
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor:
    """Fan jobs out over a thread pool (shared memory, subject to the GIL).

    >>> ThreadExecutor(workers=2).map(lambda x: x + 1, [1, 2, 3])
    [2, 3, 4]
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = max(1, workers if workers is not None else _default_workers())

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` concurrently; results come back in input order."""
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


class ProcessExecutor:
    """Fan jobs out over worker processes with chunked dispatch.

    ``fn`` and the items must be picklable (the engine's ``run_job`` and
    ``MiningJob`` are).  ``chunksize=None`` picks ``ceil(len / (4 *
    workers))`` -- about four waves per worker, balancing pickling
    overhead against tail latency from unevenly sized documents.

    >>> ProcessExecutor(workers=2).chunk_size(100)
    13
    >>> ProcessExecutor(workers=2, chunksize=5).chunk_size(100)
    5
    """

    name = "process"

    def __init__(self, workers: int | None = None, chunksize: int | None = None) -> None:
        self.workers = max(1, workers if workers is not None else _default_workers())
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize!r}")
        self.chunksize = chunksize

    def chunk_size(self, n_items: int) -> int:
        """The dispatch chunk size used for ``n_items`` jobs."""
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(n_items / (4 * self.workers)))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` across worker processes; input order preserved."""
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        with concurrent.futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items, chunksize=self.chunk_size(len(items))))

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers}, chunksize={self.chunksize})"


def resolve_executor(
    name: str, workers: int | None = None
) -> SerialExecutor | ThreadExecutor | ProcessExecutor | SharedMemoryExecutor:
    """Build an executor from a CLI-style name.

    >>> resolve_executor("serial").name
    'serial'
    >>> resolve_executor("process", workers=4).workers
    4
    >>> resolve_executor("shm", workers=2).workers
    2
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers=workers)
    if name == "process":
        return ProcessExecutor(workers=workers)
    if name == "shm":
        return SharedMemoryExecutor(workers=workers)
    raise ValueError(
        f"unknown executor {name!r}; expected 'serial', 'thread', 'process' "
        f"or 'shm'"
    )
