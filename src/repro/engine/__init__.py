"""Parallel corpus mining: many documents, one null model, corrected
significance.

The paper's single-string miners answer "is *this* string anomalous?";
its motivating applications (intrusion detection, market monitoring,
sports and stock analysis) ask that question of an entire *corpus* at
once.  This subsystem is that layer:

* :mod:`repro.engine.jobs` -- :class:`JobSpec` / :class:`MiningJob`
  pair any of the four paper problems with a document and a shared
  :class:`~repro.core.model.BernoulliModel`; :func:`run_job` is the
  picklable per-document unit of work and :func:`run_job_batch` the
  batched one (a chunk of documents through a single kernel
  ``mine_batch`` call -- see ``CorpusEngine(batch_docs=...)``).
* :mod:`repro.engine.executors` -- pluggable fan-out:
  :class:`SerialExecutor`, :class:`ThreadExecutor`, and chunked
  :class:`ProcessExecutor`, all order-preserving (parallel results are
  identical to serial).
* :mod:`repro.engine.shm` -- :class:`SharedMemoryExecutor`, the
  multi-core mining path: each (spec, model) group's documents are
  encoded once into flat arrays published via
  ``multiprocessing.shared_memory``, and a :class:`WorkerPool` whose
  workers attach blocks per task (by name) mines
  ``batch_docs``-document chunks through the kernel ``mine_batch``
  call, returning compact result arrays.  The pool's lifetime is
  decoupled from runs -- ``persistent=True`` keeps it alive across
  corpora for service workloads (:mod:`repro.service`).  This is the
  executor ``repro-mss batch --workers N`` uses by default.
* :mod:`repro.engine.deadline` / :mod:`repro.engine.supervisor` -- the
  resilience primitives: request :class:`Deadline` objects tunnelled to
  executors via a contextvar (expired batches stop mining between chunk
  dispatches with :class:`DeadlineExceeded`), and the
  :class:`PoolSupervisor` circuit breaker that stops pool restart churn
  after consecutive failures (open -> half-open probe -> closed).
* :mod:`repro.engine.calibration` -- :class:`CalibrationCache` memoizes
  the Monte-Carlo X²max null distribution per (model, length-bucket) so
  the whole corpus shares a handful of simulations.
* :mod:`repro.engine.corrections` -- Bonferroni and Benjamini-Hochberg
  adjusted p-values across the corpus.
* :mod:`repro.engine.corpus` -- :class:`CorpusEngine.run(jobs)` ties it
  together and returns a :class:`CorpusResult` (per-document results in
  input order plus aggregate :class:`~repro.core.results.ScanStats`).

The CLI front-end is ``repro-mss batch`` (see :mod:`repro.cli`).
"""

from repro.engine.calibration import (
    CalibrationCache,
    length_bucket,
    model_fingerprint,
)
from repro.engine.corpus import CorpusEngine, CorpusResult
from repro.engine.deadline import (
    Deadline,
    DeadlineExceeded,
    active_deadline,
    reset_active_deadline,
    set_active_deadline,
)
from repro.engine.corrections import (
    CORRECTIONS,
    adjust_p_values,
    benjamini_hochberg,
    bonferroni,
)
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    WorkerPool,
    resolve_executor,
)
from repro.engine.jobs import (
    PROBLEMS,
    DocumentResult,
    JobSpec,
    MiningJob,
    ordered_scan,
    run_job,
    run_job_batch,
)
from repro.engine.shm import pack_jobs
from repro.engine.supervisor import PoolSupervisor

__all__ = [
    "CorpusEngine",
    "CorpusResult",
    "Deadline",
    "DeadlineExceeded",
    "active_deadline",
    "set_active_deadline",
    "reset_active_deadline",
    "PoolSupervisor",
    "MiningJob",
    "JobSpec",
    "DocumentResult",
    "ordered_scan",
    "run_job",
    "run_job_batch",
    "pack_jobs",
    "PROBLEMS",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "WorkerPool",
    "resolve_executor",
    "CalibrationCache",
    "length_bucket",
    "model_fingerprint",
    "CORRECTIONS",
    "bonferroni",
    "benjamini_hochberg",
    "adjust_p_values",
]
