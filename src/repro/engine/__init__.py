"""Parallel corpus mining: many documents, one null model, corrected
significance.

The paper's single-string miners answer "is *this* string anomalous?";
its motivating applications (intrusion detection, market monitoring,
sports and stock analysis) ask that question of an entire *corpus* at
once.  This subsystem is that layer:

* :mod:`repro.engine.jobs` -- :class:`JobSpec` / :class:`MiningJob`
  pair any of the four paper problems with a document and a shared
  :class:`~repro.core.model.BernoulliModel`; :func:`run_job` is the
  picklable per-document unit of work and :func:`run_job_batch` the
  batched one (a chunk of documents through a single kernel
  ``mine_batch`` call -- see ``CorpusEngine(batch_docs=...)``).
* :mod:`repro.engine.executors` -- pluggable fan-out:
  :class:`SerialExecutor`, :class:`ThreadExecutor`, and chunked
  :class:`ProcessExecutor`, all order-preserving (parallel results are
  identical to serial).
* :mod:`repro.engine.calibration` -- :class:`CalibrationCache` memoizes
  the Monte-Carlo X²max null distribution per (model, length-bucket) so
  the whole corpus shares a handful of simulations.
* :mod:`repro.engine.corrections` -- Bonferroni and Benjamini-Hochberg
  adjusted p-values across the corpus.
* :mod:`repro.engine.corpus` -- :class:`CorpusEngine.run(jobs)` ties it
  together and returns a :class:`CorpusResult` (per-document results in
  input order plus aggregate :class:`~repro.core.results.ScanStats`).

The CLI front-end is ``repro-mss batch`` (see :mod:`repro.cli`).
"""

from repro.engine.calibration import CalibrationCache, length_bucket
from repro.engine.corpus import CorpusEngine, CorpusResult
from repro.engine.corrections import (
    CORRECTIONS,
    adjust_p_values,
    benjamini_hochberg,
    bonferroni,
)
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.engine.jobs import (
    PROBLEMS,
    DocumentResult,
    JobSpec,
    MiningJob,
    run_job,
    run_job_batch,
)

__all__ = [
    "CorpusEngine",
    "CorpusResult",
    "MiningJob",
    "JobSpec",
    "DocumentResult",
    "run_job",
    "run_job_batch",
    "PROBLEMS",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "CalibrationCache",
    "length_bucket",
    "CORRECTIONS",
    "bonferroni",
    "benjamini_hochberg",
    "adjust_p_values",
]
