"""Multiple-testing corrections for corpus-level significance.

Mining a corpus runs one hypothesis test per document; reporting every
document with a raw ``p < alpha`` would flag ``alpha * m`` null documents
by chance alone.  Two standard corrections are provided as *adjusted
p-values* (compare the adjusted value against ``alpha`` directly):

* **Bonferroni** -- controls the family-wise error rate;
  ``p_adj = min(1, m * p)``.  Conservative but simple, the right choice
  when a single false alarm is costly (the paper's intrusion-detection
  motivation).
* **Benjamini-Hochberg** -- controls the false discovery rate; the
  step-up procedure ``p_adj(i) = min_{j >= i} (m / j) * p_(j)`` over the
  ascending order statistics.  The right choice for exploratory corpus
  scans where a bounded *fraction* of false discoveries is acceptable.

Both are order-preserving on ties and clamp to 1.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["CORRECTIONS", "bonferroni", "benjamini_hochberg", "adjust_p_values"]

#: Supported correction names (``"none"`` passes p-values through).
CORRECTIONS = ("none", "bonferroni", "bh")


def bonferroni(p_values: Sequence[float]) -> list[float]:
    """Bonferroni-adjusted p-values: ``min(1, m * p)``.

    >>> bonferroni([0.01, 0.25, 0.5])
    [0.03, 0.75, 1.0]
    """
    _validate(p_values)
    m = len(p_values)
    return [min(1.0, m * p) for p in p_values]


def benjamini_hochberg(p_values: Sequence[float]) -> list[float]:
    """Benjamini-Hochberg (FDR) adjusted p-values, in input order.

    Step-up procedure: sort ascending, scale the i-th order statistic by
    ``m / i``, then enforce monotonicity from the largest down.

    >>> benjamini_hochberg([0.01, 0.04, 0.03, 0.005])
    [0.02, 0.04, 0.04, 0.02]
    >>> benjamini_hochberg([0.5])
    [0.5]
    """
    _validate(p_values)
    m = len(p_values)
    if m == 0:
        return []
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running_min = 1.0
    for rank in range(m, 0, -1):
        index = order[rank - 1]
        running_min = min(running_min, p_values[index] * m / rank)
        adjusted[index] = running_min
    return adjusted


def adjust_p_values(p_values: Sequence[float], method: str) -> list[float]:
    """Dispatch by correction name (``"none"``, ``"bonferroni"``, ``"bh"``).

    >>> adjust_p_values([0.02, 0.5], "none")
    [0.02, 0.5]
    >>> adjust_p_values([0.02, 0.5], "bonferroni")
    [0.04, 1.0]
    """
    if method == "none":
        _validate(p_values)
        return list(p_values)
    if method == "bonferroni":
        return bonferroni(p_values)
    if method == "bh":
        return benjamini_hochberg(p_values)
    raise ValueError(f"unknown correction {method!r}; expected one of {CORRECTIONS}")


def _validate(p_values: Sequence[float]) -> None:
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-values must lie in [0, 1], got {p!r}")
