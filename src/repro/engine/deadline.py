"""Request deadlines, and a contextvar tunnel into the executors.

A :class:`Deadline` is an absolute point on the monotonic clock by
which a request's work must finish.  The service stamps one on each
request from its ``timeout_ms`` field (or ``serve
--default-timeout-ms``); it is checked **cooperatively** at the three
places where shedding is cheap and results stay bit-identical:

* at admission (``MiningService._mine``) -- an already-expired request
  is answered 504 without queueing;
* at batch formation and again on the mine thread
  (:class:`~repro.service.batcher.MicroBatcher`) -- an expired request
  is completed with 504 *instead of* mined, and because mining is
  batch-composition-invariant its surviving batchmates still get
  bit-identical results;
* between chunk dispatches in
  :class:`~repro.engine.shm.SharedMemoryExecutor` -- a whole batch
  whose deadline passed mid-run stops mining further chunks and raises
  :class:`DeadlineExceeded`.

The executor learns the active batch deadline the same way it learns
trace ids: through a contextvar set around the ``mine_documents`` call
(:func:`set_active_deadline`), so ``CorpusEngine.mine_documents`` keeps
its signature and test fakes keep working.

Examples
--------
>>> deadline = Deadline.from_timeout_ms(50)
>>> deadline.expired()
False
>>> Deadline(expires_at=0.0).expired()
True
"""

from __future__ import annotations

import contextvars
import time
from dataclasses import dataclass

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "active_deadline",
    "reset_active_deadline",
    "set_active_deadline",
]


class DeadlineExceeded(Exception):
    """Raised when work is shed because its deadline already passed."""


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock.

    Examples
    --------
    >>> late = Deadline(expires_at=time.monotonic() + 60.0)
    >>> late.expired()
    False
    >>> late.remaining() > 0
    True
    """

    expires_at: float

    @classmethod
    def from_timeout_ms(cls, timeout_ms: float | None) -> "Deadline | None":
        """A deadline ``timeout_ms`` from now, or ``None`` for no limit."""
        if timeout_ms is None:
            return None
        return cls(expires_at=time.monotonic() + timeout_ms / 1000.0)

    def remaining(self) -> float:
        """Seconds until expiry (negative once past)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return time.monotonic() >= self.expires_at


_ACTIVE_DEADLINE: contextvars.ContextVar[Deadline | None] = (
    contextvars.ContextVar("repro_active_deadline", default=None)
)


def set_active_deadline(deadline: Deadline | None):
    """Install ``deadline`` for executors below this frame; returns a token.

    Mirrors :func:`repro.obs.tracing.set_active_trace_ids` -- the
    batcher wraps its ``engine.mine_documents`` call so the executor
    can shed expired work without a signature change.
    """
    return _ACTIVE_DEADLINE.set(deadline)


def reset_active_deadline(token) -> None:
    """Undo :func:`set_active_deadline` (pass its return value)."""
    _ACTIVE_DEADLINE.reset(token)


def active_deadline() -> Deadline | None:
    """The deadline installed by the nearest enclosing ``set_active_deadline``."""
    return _ACTIVE_DEADLINE.get()
