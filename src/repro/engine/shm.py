"""Zero-copy shared-memory fan-out: the engine's multi-core mining path.

The chunked :class:`~repro.engine.executors.ProcessExecutor` loses to
serial on corpus mining because every dispatched job pickles its
document (and every result pickles a tree of dataclasses) across the
process boundary -- the IPC bill grows with the corpus, not with the
number of workers.  This module removes the per-job payload entirely:

1. **Pack** -- :func:`pack_jobs` encodes each (spec, model) group of
   documents *once* in the parent into one flat ``int64`` code array
   plus a per-document offset table (the same layout the numpy
   backend's ``_BatchCorpus`` builds internally).
2. **Publish** -- the flat array is copied into a
   :class:`multiprocessing.shared_memory.SharedMemory` block; what
   crosses the process boundary is a :class:`GroupDescriptor`, a few
   hundred bytes naming the block and carrying the offsets, spec and
   model.
3. **Attach** -- a persistent :class:`concurrent.futures.ProcessPoolExecutor`
   maps every block once per worker (pool initializer), and resolves
   each group's kernel backend once.  Tasks after that are three
   integers: ``(group, lo, hi)``.
4. **Mine** -- each worker runs the backend's ``mine_batch`` over its
   assigned slice of documents (``batch_docs`` documents per task) and
   returns *compact result arrays* -- per-document counters plus flat
   ``(x2, start, end, counts)`` arrays over all reported substrings --
   instead of pickled result objects.
5. **Aggregate** -- the parent rebuilds
   :class:`~repro.engine.jobs.DocumentResult` values in submission
   order from the arrays.  Scores, intervals, orderings and the
   evaluated/skipped counters are bit-identical to
   :class:`~repro.engine.executors.SerialExecutor` (enforced by
   ``tests/engine/test_shm_executor.py``).

Fault tolerance: any chunk whose worker dies (or whose pool cannot be
started at all -- sandboxes without ``/dev/shm`` semantics) is re-mined
in the parent process from the parent's own copy of the packed arrays,
so a crashed worker degrades throughput, never results.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.core.counts import PrefixCountIndex
from repro.core.results import ScanStats, SignificantSubstring
from repro.engine.jobs import DocumentResult, MiningJob, ordered_scan

__all__ = [
    "DEFAULT_BATCH_DOCS",
    "GroupDescriptor",
    "PackedCorpus",
    "SharedMemoryExecutor",
    "pack_jobs",
]

#: Documents mined per worker task (one ``mine_batch`` call each) when
#: neither the executor nor the engine specifies ``batch_docs``.
DEFAULT_BATCH_DOCS = 32

#: Test hook: when this environment variable is set, workers exit hard
#: before mining -- the fault-injection switch the crashed-worker
#: fallback test flips.  Never set outside the test-suite.
_CRASH_ENV = "REPRO_SHM_TEST_CRASH"


@dataclass(frozen=True)
class GroupDescriptor:
    """Everything a worker needs to mine one published group (picklable).

    ``shm_name`` names the shared block holding the group's flat code
    array; ``offsets`` is the ``(docs + 1,)`` int64 offset table into it
    (document ``d`` is ``codes[offsets[d]:offsets[d + 1]]``); ``spec``
    and ``model`` are the group's shared mining parameters.
    """

    shm_name: str
    offsets: np.ndarray
    spec: object
    model: object

    @property
    def total_symbols(self) -> int:
        """Length of the flat code array behind ``shm_name``."""
        return int(self.offsets[-1])


@dataclass
class _PackedGroup:
    """Parent-side state of one (spec, model) group."""

    jobs: list
    spec: object
    model: object
    codes: np.ndarray
    offsets: np.ndarray
    shm: shared_memory.SharedMemory | None = None

    @property
    def doc_count(self) -> int:
        return len(self.jobs)

    def descriptor(self) -> GroupDescriptor:
        if self.shm is None:
            raise RuntimeError("group was packed without publish=True")
        return GroupDescriptor(
            shm_name=self.shm.name,
            offsets=self.offsets,
            spec=self.spec,
            model=self.model,
        )


@dataclass
class PackedCorpus:
    """A job list encoded once, optionally published to shared memory.

    Groups follow :func:`repro.engine.jobs.run_job_batch`'s rule:
    consecutive jobs sharing a ``(spec, model)`` pair form one group, so
    reassembling group results in group order restores submission order.
    Call :meth:`release` (idempotent) to close and unlink any published
    blocks; the parent-side arrays stay usable afterwards.
    """

    groups: list = field(default_factory=list)

    @property
    def published(self) -> bool:
        """Whether any group owns a live shared-memory block."""
        return any(group.shm is not None for group in self.groups)

    def descriptors(self) -> list[GroupDescriptor]:
        """Per-group worker descriptors (requires ``publish=True``)."""
        return [group.descriptor() for group in self.groups]

    def release(self) -> None:
        """Close and unlink every published block (idempotent)."""
        for group in self.groups:
            if group.shm is None:
                continue
            try:
                group.shm.close()
                group.shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            group.shm = None


def pack_jobs(jobs: Sequence[MiningJob], *, publish: bool = True) -> PackedCorpus:
    """Encode a job list into flat per-group arrays, once.

    Each consecutive ``(spec, model)`` group's documents are encoded
    with the shared model and concatenated into one ``int64`` array;
    with ``publish`` the arrays are then copied into shared-memory
    blocks so worker processes can attach without any per-document
    pickling.  Publishing is all-or-nothing: on a host whose shared
    memory is unusable (no ``/dev/shm`` semantics, out of space) every
    block is released and the corpus comes back unpublished -- the
    executor then mines the parent-side arrays in-process instead of
    failing.  The caller owns any blocks: wrap use in ``try/finally
    release()``.
    """
    corpus = PackedCorpus()
    for (spec, model), group_iter in itertools.groupby(
        jobs, key=lambda job: (job.spec, job.model)
    ):
        group_jobs = list(group_iter)
        encoded = [model.encode(job.text) for job in group_jobs]
        lengths = np.array([arr.shape[0] for arr in encoded], dtype=np.int64)
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = (
            np.concatenate(encoded)
            if encoded
            else np.empty(0, dtype=np.int64)
        )
        corpus.groups.append(_PackedGroup(
            jobs=group_jobs, spec=spec, model=model, codes=codes,
            offsets=offsets,
        ))
    if publish:
        try:
            for group in corpus.groups:
                if not group.codes.size:
                    continue
                shm = shared_memory.SharedMemory(
                    create=True, size=group.codes.nbytes
                )
                group.shm = shm
                np.ndarray(
                    group.codes.shape, dtype=np.int64, buffer=shm.buf
                )[:] = group.codes
        except (OSError, ValueError):
            corpus.release()  # unusable shared memory: stay unpublished
    return corpus


# ----------------------------------------------------------------------
# The chunk kernel: shared by workers and the parent-side fallback.
# ----------------------------------------------------------------------

def _mine_span(spec, model, codes, offsets, lo, hi):
    """Mine documents ``lo..hi`` of one packed group into compact arrays.

    Returns ``(per_doc, x2, bounds, counts, kernel_seconds, mined)``:

    * ``per_doc`` -- int64 ``(hi - lo, 4)``: substring count, evaluated,
      skipped, truncated flag per document;
    * ``x2`` / ``bounds`` / ``counts`` -- the reported substrings of all
      documents flattened in document order (``float64 (m,)``,
      ``int64 (m, 2)``, ``int64 (m, k)``), already in the ``find_*``
      wrappers' result order (:func:`~repro.engine.jobs.ordered_scan`);
    * ``mined`` -- how many documents actually reached the kernel
      (minlength documents shorter than the floor never do, mirroring
      :func:`~repro.engine.jobs.run_job_batch`).
    """
    from repro.kernels import get_backend

    k = model.k
    span = hi - lo
    per_doc = np.zeros((span, 4), dtype=np.int64)
    pending: list[tuple[int, PrefixCountIndex]] = []
    for pos in range(span):
        doc = lo + pos
        doc_codes = codes[int(offsets[doc]):int(offsets[doc + 1])]
        n = doc_codes.shape[0]
        if spec.problem == "minlength" and spec.min_length > n:
            continue  # the empty answer; no kernel call (see run_job_batch)
        pending.append((pos, PrefixCountIndex(doc_codes, k)))
    x2_parts: list[float] = []
    bounds_parts: list[tuple[int, int]] = []
    counts_parts: list[tuple[int, ...]] = []
    kernel_seconds = 0.0
    if pending:
        kernel = get_backend(spec.backend)
        indexes = [index for _, index in pending]
        started = time.perf_counter()
        raws = kernel.mine_batch(indexes, model, spec)
        kernel_seconds = time.perf_counter() - started
        for (pos, index), raw in zip(pending, raws):
            found, _, truncated, evaluated, skipped = ordered_scan(
                spec, raw, index.n
            )
            per_doc[pos] = (len(found), evaluated, skipped, int(truncated))
            for value, start, end in found:
                x2_parts.append(value)
                bounds_parts.append((start, end))
                counts_parts.append(index.counts(start, end))
    x2 = np.array(x2_parts, dtype=np.float64)
    bounds = np.array(bounds_parts, dtype=np.int64).reshape(len(bounds_parts), 2)
    counts = np.array(counts_parts, dtype=np.int64).reshape(len(counts_parts), k)
    return per_doc, x2, bounds, counts, kernel_seconds, len(pending)


# ----------------------------------------------------------------------
# Worker-side machinery.
# ----------------------------------------------------------------------

#: Worker-process state set by :func:`_attach_groups`:
#: ``(descriptor, shm)`` per group, attached once per worker.
_WORKER_GROUPS: list[tuple[GroupDescriptor, shared_memory.SharedMemory]] = []


def _attach_groups(descriptors):
    """Pool initializer: map every group's block, resolve backends once."""
    from repro.kernels import get_backend

    global _WORKER_GROUPS
    _WORKER_GROUPS = []
    for descriptor in descriptors:
        # Attaching re-registers the block with the resource tracker,
        # but the whole pool shares the parent's tracker (its fd is
        # inherited / passed through spawn) and the tracker's cache is a
        # set -- so the parent's single unlink+unregister at release()
        # retires the name cleanly for everyone.
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        get_backend(descriptor.spec.backend)  # warm the registry resolution
        _WORKER_GROUPS.append((descriptor, shm))


def _mine_chunk(group_id, lo, hi):
    """Worker task: mine documents ``lo..hi`` of group ``group_id``.

    The code view into the shared block lives only for the duration of
    the task (``PrefixCountIndex`` copies its slice), so worker exit
    never trips over exported buffer pointers.
    """
    if os.environ.get(_CRASH_ENV):
        os._exit(3)  # fault-injection hook, see _CRASH_ENV
    descriptor, shm = _WORKER_GROUPS[group_id]
    codes = np.ndarray(
        (descriptor.total_symbols,), dtype=np.int64, buffer=shm.buf
    )
    try:
        return _mine_span(
            descriptor.spec, descriptor.model, codes, descriptor.offsets,
            lo, hi,
        )
    finally:
        del codes


# ----------------------------------------------------------------------
# Parent-side aggregation.
# ----------------------------------------------------------------------

def _documents_from_payload(group, lo, payload):
    """Rebuild ``DocumentResult`` values from one chunk's compact arrays."""
    spec = group.spec
    model = group.model
    per_doc, x2, bounds, counts, kernel_seconds, mined = payload
    share = kernel_seconds / mined if mined else 0.0
    documents: list[DocumentResult] = []
    cursor = 0
    for pos in range(per_doc.shape[0]):
        doc = lo + pos
        job = group.jobs[doc]
        n = int(group.offsets[doc + 1] - group.offsets[doc])
        if spec.problem == "minlength" and spec.min_length > n:
            documents.append(
                DocumentResult(
                    doc_id=job.doc_id,
                    n=n,
                    substrings=(),
                    stats=ScanStats(n=n),
                    p_value=1.0,
                    truncated=False,
                )
            )
            continue
        n_subs, evaluated, skipped, truncated = (
            int(value) for value in per_doc[pos]
        )
        substrings = tuple(
            SignificantSubstring(
                start=int(bounds[m, 0]),
                end=int(bounds[m, 1]),
                chi_square=float(x2[m]),
                counts=tuple(int(c) for c in counts[m]),
                alphabet_size=model.k,
            )
            for m in range(cursor, cursor + n_subs)
        )
        cursor += n_subs
        start_positions = (
            n - spec.min_length + 1 if spec.problem == "minlength" else n
        )
        stats = ScanStats(
            n=n,
            substrings_evaluated=evaluated,
            positions_skipped=skipped,
            start_positions=start_positions,
            elapsed_seconds=share,
        )
        documents.append(
            DocumentResult(
                doc_id=job.doc_id,
                n=n,
                substrings=substrings,
                stats=stats,
                p_value=substrings[0].p_value if substrings else 1.0,
                truncated=bool(truncated),
            )
        )
    return documents


class SharedMemoryExecutor:
    """Corpus executor: shared-memory fan-out to a persistent pool.

    Unlike the generic executors this one owns the whole corpus path --
    the engine hands it the job list via :meth:`run_jobs` instead of
    mapping a function over items -- because the zero-copy design needs
    to see all documents up front to pack them.

    Parameters
    ----------
    workers:
        Worker-process count (defaults to the CPU count).  ``1`` mines
        in-process with no shared memory or pool at all.
    batch_docs:
        Documents per worker task, i.e. per ``mine_batch`` kernel call
        (default :data:`DEFAULT_BATCH_DOCS`); the engine's per-run
        ``batch_docs`` overrides it.

    Examples
    --------
    >>> SharedMemoryExecutor(workers=2).name
    'shm'
    >>> SharedMemoryExecutor(workers=2, batch_docs=16).batch_docs
    16
    """

    name = "shm"

    def __init__(
        self, workers: int | None = None, batch_docs: int | None = None
    ) -> None:
        self.workers = max(
            1, workers if workers is not None else (os.cpu_count() or 1)
        )
        if batch_docs is not None and batch_docs < 1:
            raise ValueError(f"batch_docs must be >= 1, got {batch_docs!r}")
        self.batch_docs = batch_docs
        #: Timing/diagnostic breakdown of the most recent :meth:`run_jobs`
        #: call: pack/mine/aggregate seconds, chunk count, and how many
        #: chunks fell back to in-process mining.
        self.last_run_info: dict | None = None

    def map(self, fn, items):
        """Generic in-process map (order-preserving).

        The zero-copy machinery only applies to mining jobs; anything
        else an engine maps through this executor (nothing today) runs
        serially.
        """
        return [fn(item) for item in items]

    def chunk_size(self, batch_docs: int | None = None) -> int:
        """The per-task document count for a run.

        >>> SharedMemoryExecutor().chunk_size()
        32
        >>> SharedMemoryExecutor(batch_docs=8).chunk_size()
        8
        >>> SharedMemoryExecutor(batch_docs=8).chunk_size(20)
        20
        """
        if batch_docs is not None:
            return batch_docs
        if self.batch_docs is not None:
            return self.batch_docs
        return DEFAULT_BATCH_DOCS

    def run_jobs(
        self, jobs: Sequence[MiningJob], *, batch_docs: int | None = None
    ) -> list[DocumentResult]:
        """Mine every job; results in submission order, bit-identical to
        :class:`~repro.engine.executors.SerialExecutor`.

        Any worker failure -- a crashed process, a pool that cannot
        start -- downgrades the affected chunks to in-process mining of
        the parent-side arrays; ``last_run_info["fallback_chunks"]``
        records how many.
        """
        job_list = list(jobs)
        batch = self.chunk_size(batch_docs)
        info = {
            "workers": self.workers,
            "batch_docs": batch,
            "pack_seconds": 0.0,
            "mine_seconds": 0.0,
            "aggregate_seconds": 0.0,
            "chunks": 0,
            "fallback_chunks": 0,
            "published": False,
        }
        # Publish only when the pool would actually be used: a corpus
        # that fits one chunk (or one worker) mines in-process, so
        # copying it into shared memory would be pure waste.
        group_sizes = [
            sum(1 for _ in group_iter)
            for _, group_iter in itertools.groupby(
                job_list, key=lambda job: (job.spec, job.model)
            )
        ]
        n_chunks = sum(-(-size // batch) for size in group_sizes)
        parallel = self.workers > 1 and n_chunks > 1
        started = time.perf_counter()
        corpus = pack_jobs(job_list, publish=parallel)
        info["pack_seconds"] = time.perf_counter() - started
        info["published"] = corpus.published
        chunks = [
            (group_id, lo, min(lo + batch, group.doc_count))
            for group_id, group in enumerate(corpus.groups)
            for lo in range(0, group.doc_count, batch)
        ]
        info["chunks"] = len(chunks)
        payloads: dict[tuple[int, int, int], tuple] = {}
        try:
            started = time.perf_counter()
            if parallel and corpus.published:
                self._mine_parallel(corpus, chunks, payloads, info)
            for chunk in chunks:
                if chunk not in payloads:
                    group = corpus.groups[chunk[0]]
                    payloads[chunk] = _mine_span(
                        group.spec, group.model, group.codes, group.offsets,
                        chunk[1], chunk[2],
                    )
            info["mine_seconds"] = time.perf_counter() - started
        finally:
            corpus.release()
        started = time.perf_counter()
        documents: list[DocumentResult] = []
        for chunk in chunks:
            documents.extend(
                _documents_from_payload(
                    corpus.groups[chunk[0]], chunk[1], payloads[chunk]
                )
            )
        info["aggregate_seconds"] = time.perf_counter() - started
        self.last_run_info = info
        return documents

    def _mine_parallel(self, corpus, chunks, payloads, info):
        """Fan chunks over the persistent pool; failures stay un-filled
        in ``payloads`` for the caller's in-process pass."""
        descriptors = corpus.descriptors()
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)),
                initializer=_attach_groups,
                initargs=(descriptors,),
            )
        except (OSError, ValueError, RuntimeError):
            info["fallback_chunks"] = len(chunks)
            return
        futures: list[tuple[tuple[int, int, int], object]] = []
        with pool:
            for chunk in chunks:
                try:
                    futures.append((chunk, pool.submit(_mine_chunk, *chunk)))
                except (OSError, RuntimeError):
                    futures.append((chunk, None))
            for chunk, future in futures:
                if future is None:
                    info["fallback_chunks"] += 1
                    continue
                try:
                    payloads[chunk] = future.result()
                except Exception:
                    # Crashed worker / broken pool: leave the chunk for
                    # the caller's in-process fallback.  Results cannot
                    # be corrupted -- this chunk simply gets re-mined.
                    info["fallback_chunks"] += 1

    def __repr__(self) -> str:
        return (
            f"SharedMemoryExecutor(workers={self.workers}, "
            f"batch_docs={self.batch_docs})"
        )
