"""Zero-copy shared-memory fan-out: the engine's multi-core mining path.

The chunked :class:`~repro.engine.executors.ProcessExecutor` loses to
serial on corpus mining because every dispatched job pickles its
document (and every result pickles a tree of dataclasses) across the
process boundary -- the IPC bill grows with the corpus, not with the
number of workers.  This module removes the per-job payload entirely:

1. **Pack** -- :func:`pack_jobs` encodes each (spec, model) group of
   documents *once* in the parent into one flat ``int64`` code array
   plus a per-document offset table (the same layout the numpy
   backend's ``_BatchCorpus`` builds internally).
2. **Publish** -- the flat array is copied into a
   :class:`multiprocessing.shared_memory.SharedMemory` block; what
   crosses the process boundary is a :class:`GroupDescriptor`, a few
   hundred bytes naming the block and carrying the offsets, spec and
   model.
3. **Attach** -- a :class:`WorkerPool` (a restartable, reusable
   ``ProcessPoolExecutor`` wrapper) receives one task per chunk; the
   worker attaches the chunk's block *by name*, so the pool's lifetime
   is fully decoupled from any single corpus.  With
   ``SharedMemoryExecutor(persistent=True)`` the same pool serves every
   later :meth:`~SharedMemoryExecutor.run_jobs` call -- this is what
   lets a long-running service keep the ~100 ms pool spin-up out of
   every request (see :mod:`repro.service`).
4. **Mine** -- each worker runs the backend's ``mine_batch`` over its
   assigned slice of documents (``batch_docs`` documents per task) and
   returns *compact result arrays* -- per-document counters plus flat
   ``(x2, start, end, counts)`` arrays over all reported substrings --
   instead of pickled result objects.
5. **Aggregate** -- the parent rebuilds
   :class:`~repro.engine.jobs.DocumentResult` values in submission
   order from the arrays.  Scores, intervals, orderings and the
   evaluated/skipped counters are bit-identical to
   :class:`~repro.engine.executors.SerialExecutor` (enforced by
   ``tests/engine/test_shm_executor.py``).

Fault tolerance: any chunk whose worker dies (or whose pool cannot be
started at all -- sandboxes without ``/dev/shm`` semantics) is re-mined
in the parent process from the parent's own copy of the packed arrays,
so a crashed worker degrades throughput, never results.  A
:class:`~repro.engine.supervisor.PoolSupervisor` circuit breaker sits
in front of the pool: after enough consecutive failing runs it stops
publishing/dispatching entirely (serial mining, no restart churn) for a
cooldown, then probes with a single chunk.  Batch deadlines installed
via :func:`repro.engine.deadline.set_active_deadline` are honoured
between chunk dispatches; the ``worker_crash`` / ``pool_start_fail``
fault sites (:mod:`repro.faults`) make all of it testable on a healthy
host.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.core.counts import PrefixCountIndex
from repro.core.results import ScanStats, SignificantSubstring
from repro.engine.deadline import DeadlineExceeded, active_deadline
from repro.engine.jobs import DocumentResult, MiningJob, ordered_scan
from repro.engine.supervisor import PoolSupervisor
from repro.faults import get_faults
from repro.obs.log import get_logger
from repro.obs.metrics import LocalMetrics, MetricsRegistry, default_registry
from repro.obs.tracing import active_trace_ids

__all__ = [
    "DEFAULT_BATCH_DOCS",
    "GroupDescriptor",
    "PackedCorpus",
    "SharedMemoryExecutor",
    "WorkerPool",
    "pack_jobs",
]

#: Documents mined per worker task (one ``mine_batch`` call each) when
#: neither the executor nor the engine specifies ``batch_docs``.
DEFAULT_BATCH_DOCS = 32

_LOG = get_logger("repro.engine.shm")

#: Help strings for the worker-side counters merged into the parent's
#: registry (one :class:`~repro.obs.metrics.LocalMetrics` per chunk,
#: returned piggybacked on the chunk's result payload).
_WORKER_HELP = {
    "repro_worker_docs_mined_total": "Documents mined by chunk tasks",
    "repro_worker_chunks_total": "Chunk tasks completed",
    "repro_worker_kernel_seconds": "Kernel seconds per chunk task",
}


@dataclass(frozen=True)
class GroupDescriptor:
    """Everything a worker needs to mine one published span (picklable).

    ``shm_name`` names the shared block holding the group's flat code
    array; ``offsets`` is a ``(docs + 1,)`` int64 offset table into it
    (document ``d`` is ``codes[offsets[d]:offsets[d + 1]]``).  For a
    chunk task this is just the task's *slice* of the group table --
    absolute offsets preserved -- so per-task pickling stays
    O(batch_docs), not O(group documents).  ``spec`` and ``model`` are
    the group's shared mining parameters.  ``trace_ids`` carries the
    request trace ids of the batch this chunk belongs to (see
    :mod:`repro.obs.tracing`) -- purely diagnostic, empty outside a
    traced service request.
    """

    shm_name: str
    offsets: np.ndarray
    spec: object
    model: object
    trace_ids: tuple = ()

    @property
    def total_symbols(self) -> int:
        """One past the highest flat index these documents reach
        (``offsets[-1]``; for a whole group, the flat array's length)."""
        return int(self.offsets[-1])

    @property
    def doc_count(self) -> int:
        """How many documents this descriptor spans."""
        return self.offsets.shape[0] - 1


@dataclass
class _PackedGroup:
    """Parent-side state of one (spec, model) group."""

    jobs: list
    spec: object
    model: object
    codes: np.ndarray
    offsets: np.ndarray
    shm: shared_memory.SharedMemory | None = None

    @property
    def doc_count(self) -> int:
        return len(self.jobs)

    def descriptor(self) -> GroupDescriptor:
        if self.shm is None:
            raise RuntimeError("group was packed without publish=True")
        return GroupDescriptor(
            shm_name=self.shm.name,
            offsets=self.offsets,
            spec=self.spec,
            model=self.model,
        )

    def span_descriptor(
        self, lo: int, hi: int, trace_ids: tuple = ()
    ) -> GroupDescriptor:
        """A descriptor covering documents ``lo..hi`` only -- the
        per-task unit, carrying just that span's offset slice (plus the
        batch's request trace ids, for diagnostics)."""
        if self.shm is None:
            raise RuntimeError("group was packed without publish=True")
        return GroupDescriptor(
            shm_name=self.shm.name,
            offsets=self.offsets[lo : hi + 1],
            spec=self.spec,
            model=self.model,
            trace_ids=trace_ids,
        )


@dataclass
class PackedCorpus:
    """A job list encoded once, optionally published to shared memory.

    Groups follow :func:`repro.engine.jobs.run_job_batch`'s rule:
    consecutive jobs sharing a ``(spec, model)`` pair form one group, so
    reassembling group results in group order restores submission order.
    Call :meth:`release` (idempotent) to close and unlink any published
    blocks; the parent-side arrays stay usable afterwards.
    """

    groups: list = field(default_factory=list)

    @property
    def published(self) -> bool:
        """Whether any group owns a live shared-memory block."""
        return any(group.shm is not None for group in self.groups)

    def descriptors(self) -> list[GroupDescriptor]:
        """Per-group worker descriptors (requires ``publish=True``)."""
        return [group.descriptor() for group in self.groups]

    def release(self) -> None:
        """Close and unlink every published block (idempotent)."""
        for group in self.groups:
            if group.shm is None:
                continue
            try:
                group.shm.close()
                group.shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            group.shm = None


def pack_jobs(jobs: Sequence[MiningJob], *, publish: bool = True) -> PackedCorpus:
    """Encode a job list into flat per-group arrays, once.

    Each consecutive ``(spec, model)`` group's documents are encoded
    with the shared model and concatenated into one ``int64`` array;
    with ``publish`` the arrays are then copied into shared-memory
    blocks so worker processes can attach without any per-document
    pickling.  Publishing is all-or-nothing: on a host whose shared
    memory is unusable (no ``/dev/shm`` semantics, out of space) every
    block is released and the corpus comes back unpublished -- the
    executor then mines the parent-side arrays in-process instead of
    failing.  The caller owns any blocks: wrap use in ``try/finally
    release()``.
    """
    corpus = PackedCorpus()
    for (spec, model), group_iter in itertools.groupby(
        jobs, key=lambda job: (job.spec, job.model)
    ):
        group_jobs = list(group_iter)
        encoded = [model.encode(job.text) for job in group_jobs]
        lengths = np.array([arr.shape[0] for arr in encoded], dtype=np.int64)
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = (
            np.concatenate(encoded)
            if encoded
            else np.empty(0, dtype=np.int64)
        )
        corpus.groups.append(_PackedGroup(
            jobs=group_jobs, spec=spec, model=model, codes=codes,
            offsets=offsets,
        ))
    if publish:
        try:
            for group in corpus.groups:
                if not group.codes.size:
                    continue
                shm = shared_memory.SharedMemory(
                    create=True, size=group.codes.nbytes
                )
                group.shm = shm
                np.ndarray(
                    group.codes.shape, dtype=np.int64, buffer=shm.buf
                )[:] = group.codes
        except (OSError, ValueError):
            corpus.release()  # unusable shared memory: stay unpublished
    return corpus


# ----------------------------------------------------------------------
# The chunk kernel: shared by workers and the parent-side fallback.
# ----------------------------------------------------------------------

def _mine_span(spec, model, codes, offsets, lo, hi):
    """Mine documents ``lo..hi`` of one packed group into compact arrays.

    Returns ``(per_doc, x2, bounds, counts, kernel_seconds, mined,
    local_metrics, span_record)``:

    * ``per_doc`` -- int64 ``(hi - lo, 4)``: substring count, evaluated,
      skipped, truncated flag per document;
    * ``x2`` / ``bounds`` / ``counts`` -- the reported substrings of all
      documents flattened in document order (``float64 (m,)``,
      ``int64 (m, 2)``, ``int64 (m, k)``), already in the ``find_*``
      wrappers' result order (:func:`~repro.engine.jobs.ordered_scan`);
    * ``mined`` -- how many documents actually reached the kernel
      (minlength documents shorter than the floor never do, mirroring
      :func:`~repro.engine.jobs.run_job_batch`);
    * ``local_metrics`` -- a picklable
      :class:`~repro.obs.metrics.LocalMetrics` of this chunk's
      counters/timings, accumulated worker-side and merged into the
      parent's registry during aggregation (no shared state crosses
      the process boundary);
    * ``span_record`` -- a picklable dict of this chunk's own span
      interval (pid, docs, mine/kernel durations).  Durations only, no
      absolute clock readings: ``perf_counter`` epochs are not
      comparable across processes, so the parent re-bases the interval
      inside its own ``batch_mine`` span when a traced request asks
      for worker child spans.
    """
    from repro.kernels import get_backend

    span_started = time.perf_counter()
    k = model.k
    span = hi - lo
    per_doc = np.zeros((span, 4), dtype=np.int64)
    pending: list[tuple[int, PrefixCountIndex]] = []
    for pos in range(span):
        doc = lo + pos
        doc_codes = codes[int(offsets[doc]):int(offsets[doc + 1])]
        n = doc_codes.shape[0]
        if spec.problem == "minlength" and spec.min_length > n:
            continue  # the empty answer; no kernel call (see run_job_batch)
        pending.append((pos, PrefixCountIndex(doc_codes, k)))
    x2_parts: list[float] = []
    bounds_parts: list[tuple[int, int]] = []
    counts_parts: list[tuple[int, ...]] = []
    kernel_seconds = 0.0
    if pending:
        kernel = get_backend(spec.backend)
        indexes = [index for _, index in pending]
        started = time.perf_counter()
        raws = kernel.mine_batch(indexes, model, spec)
        kernel_seconds = time.perf_counter() - started
        for (pos, index), raw in zip(pending, raws):
            found, _, truncated, evaluated, skipped = ordered_scan(
                spec, raw, index.n
            )
            per_doc[pos] = (len(found), evaluated, skipped, int(truncated))
            for value, start, end in found:
                x2_parts.append(value)
                bounds_parts.append((start, end))
                counts_parts.append(index.counts(start, end))
    x2 = np.array(x2_parts, dtype=np.float64)
    bounds = np.array(bounds_parts, dtype=np.int64).reshape(len(bounds_parts), 2)
    counts = np.array(counts_parts, dtype=np.int64).reshape(len(counts_parts), k)
    local = LocalMetrics()
    local.inc("repro_worker_chunks_total")
    local.inc("repro_worker_docs_mined_total", len(pending))
    if pending:
        local.observe("repro_worker_kernel_seconds", kernel_seconds)
    span_record = {
        "pid": os.getpid(),
        "docs": span,
        "mined": len(pending),
        "mine_seconds": time.perf_counter() - span_started,
        "kernel_seconds": kernel_seconds,
    }
    return (
        per_doc, x2, bounds, counts, kernel_seconds, len(pending), local,
        span_record,
    )


# ----------------------------------------------------------------------
# Worker-side machinery.
# ----------------------------------------------------------------------

def _noop():
    """Trivial worker task: forces the pool to actually spawn processes
    (:meth:`WorkerPool.warm`)."""
    return None


def _mine_chunk(descriptor):
    """Worker task: attach the span's block by name and mine it.

    ``descriptor`` is a :meth:`_PackedGroup.span_descriptor` covering
    exactly this task's documents.  Attaching per task (a ``shm_open``
    + ``mmap``, microseconds) instead of per pool start is what
    decouples the pool's lifetime from any one corpus: the same worker
    can serve blocks published long after it was spawned.  Attaching
    re-registers the block with the resource tracker, but the whole
    pool shares the parent's tracker (its fd is inherited / passed
    through spawn) and the tracker's cache is a set -- so the parent's
    single unlink+unregister at release() retires the name cleanly for
    everyone.  The code view into the shared block lives only for the
    duration of the task (``PrefixCountIndex`` copies its slice), so
    closing the attachment never trips over exported buffer pointers.

    The ``worker_crash`` fault site (:mod:`repro.faults`, configured
    via ``REPRO_FAULTS`` which worker processes inherit) exits the
    worker hard before mining -- the switch the crashed-worker fallback
    and chaos tests flip.
    """
    if get_faults().should_fire("worker_crash"):
        os._exit(3)  # fault injection: die before touching the block
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        # A view over the block's prefix up to the span's last offset is
        # all the absolute offsets in the slice can reach.
        codes = np.ndarray(
            (descriptor.total_symbols,), dtype=np.int64, buffer=shm.buf
        )
        try:
            return _mine_span(
                descriptor.spec, descriptor.model, codes, descriptor.offsets,
                0, descriptor.doc_count,
            )
        finally:
            del codes
    finally:
        shm.close()


class WorkerPool:
    """A restartable process pool whose lifetime is decoupled from runs.

    :class:`SharedMemoryExecutor` used to build (and tear down) one
    ``ProcessPoolExecutor`` inside every ``run_jobs`` call, so the
    ~100 ms pool spin-up was paid per corpus.  ``WorkerPool`` owns that
    lifecycle separately: the pool is created lazily on first use, can
    be kept alive across any number of runs, survives broken-pool
    discard/restart cycles, and is shut down exactly once by
    :meth:`close`.  Workers carry no per-corpus state (tasks attach
    shared-memory blocks by name), which is what makes the reuse safe.

    Examples
    --------
    >>> pool = WorkerPool(workers=2)
    >>> pool.started
    False
    >>> pool.close()   # idempotent even when never started
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        #: How many times a fresh ``ProcessPoolExecutor`` was created --
        #: a persistent executor reusing its pool keeps this at 1.
        self.starts = 0

    @property
    def started(self) -> bool:
        """Whether a live pool currently exists."""
        return self._pool is not None

    def ensure_started(self) -> concurrent.futures.ProcessPoolExecutor | None:
        """Return the live pool, creating one on first use.

        Returns ``None`` when the host cannot run worker processes at
        all; callers then mine in-process.  The ``pool_start_fail``
        fault site (:mod:`repro.faults`) simulates exactly that host,
        so chaos tests can drive the serial fallback and the circuit
        breaker without an actually-broken machine.
        """
        if self._pool is None and get_faults().should_fire("pool_start_fail"):
            return None
        if self._pool is None:
            try:
                # Start the parent's shared-memory resource tracker
                # *before* forking workers.  Workers created first would
                # each spawn a private tracker on their first attach;
                # the parent's unlink+unregister then never reaches
                # those trackers and they warn about "leaked" (already
                # unlinked) blocks at exit.  A shared tracker is the
                # invariant the per-task attach design relies on.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass  # no tracker on this platform; attach still works
            try:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers
                )
                self.starts += 1
            except (OSError, ValueError, RuntimeError):
                self._pool = None
        return self._pool

    def warm(self) -> bool:
        """Spawn the worker processes now instead of at first submit.

        A service calls this at startup so the first request does not
        pay the pool spin-up.  Returns False when the pool cannot be
        started (the executor will mine in-process).
        """
        pool = self.ensure_started()
        if pool is None:
            return False
        try:
            futures = [pool.submit(_noop) for _ in range(self.workers)]
            for future in futures:
                future.result()
        except Exception:
            self.discard()
            return False
        return True

    def discard(self) -> None:
        """Drop a broken pool so the next run starts a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down and wait for workers (idempotent).

        The handle stays usable: a later :meth:`ensure_started` simply
        creates a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: returns the pool handle itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the pool."""
        self.close()

    def __repr__(self) -> str:
        state = "started" if self.started else "idle"
        return f"WorkerPool(workers={self.workers}, {state}, starts={self.starts})"


# ----------------------------------------------------------------------
# Parent-side aggregation.
# ----------------------------------------------------------------------

def _documents_from_payload(group, lo, payload):
    """Rebuild ``DocumentResult`` values from one chunk's compact arrays."""
    spec = group.spec
    model = group.model
    per_doc, x2, bounds, counts, kernel_seconds, mined = payload[:6]
    share = kernel_seconds / mined if mined else 0.0
    documents: list[DocumentResult] = []
    cursor = 0
    for pos in range(per_doc.shape[0]):
        doc = lo + pos
        job = group.jobs[doc]
        n = int(group.offsets[doc + 1] - group.offsets[doc])
        if spec.problem == "minlength" and spec.min_length > n:
            documents.append(
                DocumentResult(
                    doc_id=job.doc_id,
                    n=n,
                    substrings=(),
                    stats=ScanStats(n=n),
                    p_value=1.0,
                    truncated=False,
                )
            )
            continue
        n_subs, evaluated, skipped, truncated = (
            int(value) for value in per_doc[pos]
        )
        substrings = tuple(
            SignificantSubstring(
                start=int(bounds[m, 0]),
                end=int(bounds[m, 1]),
                chi_square=float(x2[m]),
                counts=tuple(int(c) for c in counts[m]),
                alphabet_size=model.k,
            )
            for m in range(cursor, cursor + n_subs)
        )
        cursor += n_subs
        start_positions = (
            n - spec.min_length + 1 if spec.problem == "minlength" else n
        )
        stats = ScanStats(
            n=n,
            substrings_evaluated=evaluated,
            positions_skipped=skipped,
            start_positions=start_positions,
            elapsed_seconds=share,
        )
        documents.append(
            DocumentResult(
                doc_id=job.doc_id,
                n=n,
                substrings=substrings,
                stats=stats,
                p_value=substrings[0].p_value if substrings else 1.0,
                truncated=bool(truncated),
            )
        )
    return documents


class SharedMemoryExecutor:
    """Corpus executor: shared-memory fan-out to a persistent pool.

    Unlike the generic executors this one owns the whole corpus path --
    the engine hands it the job list via :meth:`run_jobs` instead of
    mapping a function over items -- because the zero-copy design needs
    to see all documents up front to pack them.

    Parameters
    ----------
    workers:
        Worker-process count (defaults to the CPU count).  ``1`` mines
        in-process with no shared memory or pool at all.
    batch_docs:
        Documents per worker task, i.e. per ``mine_batch`` kernel call
        (default :data:`DEFAULT_BATCH_DOCS`); the engine's per-run
        ``batch_docs`` overrides it.
    persistent:
        Keep the worker pool alive *across* :meth:`run_jobs` calls
        (service workloads: the pool spin-up is paid once, not per
        request).  The default ``False`` preserves the batch-CLI
        behaviour of shutting workers down at the end of each run.
        Either way :meth:`close` (or the context-manager form) releases
        the pool; published shared-memory blocks are always per-run and
        always unlinked before ``run_jobs`` returns.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` pack/mine/
        aggregate timings, chunk counters and merged worker-side
        :class:`~repro.obs.metrics.LocalMetrics` are reported into;
        ``None`` uses the process-wide default registry.
    supervisor:
        The :class:`~repro.engine.supervisor.PoolSupervisor` circuit
        breaker gating pool use.  ``None`` builds one with default
        thresholds; tests inject one with a fake clock.  While the
        breaker is open every chunk mines in-process with no pool
        (re)start attempts; a half-open breaker sends one probe chunk.

    Examples
    --------
    >>> SharedMemoryExecutor(workers=2).name
    'shm'
    >>> SharedMemoryExecutor(workers=2, batch_docs=16).batch_docs
    16
    >>> with SharedMemoryExecutor(workers=2, persistent=True) as executor:
    ...     lazy = executor.pool.started
    >>> lazy    # the pool only spins up when a run actually needs it
    False
    """

    name = "shm"

    def __init__(
        self,
        workers: int | None = None,
        batch_docs: int | None = None,
        persistent: bool = False,
        metrics: MetricsRegistry | None = None,
        supervisor: PoolSupervisor | None = None,
    ) -> None:
        self.workers = max(
            1, workers if workers is not None else (os.cpu_count() or 1)
        )
        if batch_docs is not None and batch_docs < 1:
            raise ValueError(f"batch_docs must be >= 1, got {batch_docs!r}")
        self.batch_docs = batch_docs
        self.persistent = bool(persistent)
        self.metrics = metrics if metrics is not None else default_registry()
        #: The circuit breaker deciding whether chunks may use the pool.
        #: Its transition hook reads ``self.metrics`` at call time --
        #: services inject their registry after construction.
        self.supervisor = (
            supervisor if supervisor is not None else PoolSupervisor()
        )
        self.supervisor.on_transition = self._record_breaker_transition
        #: The executor's :class:`WorkerPool` (lazily started; kept
        #: alive across runs when ``persistent``).
        self.pool = WorkerPool(self.workers)
        #: Timing/diagnostic breakdown of the most recent :meth:`run_jobs`
        #: call: pack/mine/aggregate seconds, chunk count, published
        #: block names, pool reuse, and how many chunks fell back to
        #: in-process mining.
        self.last_run_info: dict | None = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        The executor stays usable -- a later :meth:`run_jobs` lazily
        restarts the pool.  :meth:`CorpusEngine.close
        <repro.engine.corpus.CorpusEngine.close>` delegates here.
        """
        self.pool.close()

    def __enter__(self) -> "SharedMemoryExecutor":
        """Context-manager entry: returns the executor itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the worker pool."""
        self.close()

    def map(self, fn, items):
        """Generic in-process map (order-preserving).

        The zero-copy machinery only applies to mining jobs; anything
        else an engine maps through this executor (nothing today) runs
        serially.
        """
        return [fn(item) for item in items]

    def chunk_size(self, batch_docs: int | None = None) -> int:
        """The per-task document count for a run.

        >>> SharedMemoryExecutor().chunk_size()
        32
        >>> SharedMemoryExecutor(batch_docs=8).chunk_size()
        8
        >>> SharedMemoryExecutor(batch_docs=8).chunk_size(20)
        20
        """
        if batch_docs is not None:
            return batch_docs
        if self.batch_docs is not None:
            return self.batch_docs
        return DEFAULT_BATCH_DOCS

    def run_jobs(
        self, jobs: Sequence[MiningJob], *, batch_docs: int | None = None
    ) -> list[DocumentResult]:
        """Mine every job; results in submission order, bit-identical to
        :class:`~repro.engine.executors.SerialExecutor`.

        Any worker failure -- a crashed process, a pool that cannot
        start -- downgrades the affected chunks to in-process mining of
        the parent-side arrays; ``last_run_info["fallback_chunks"]``
        records how many.  The :class:`PoolSupervisor` breaker decides
        up front how many chunks may use the pool at all (zero while
        open, one probe while half-open); breaker-withheld chunks mine
        in-process but are *not* counted as fallbacks.

        When the caller installed a batch deadline
        (:func:`~repro.engine.deadline.set_active_deadline`), expiry is
        checked between chunk dispatches and the run stops with
        :class:`~repro.engine.deadline.DeadlineExceeded` instead of
        mining the remaining chunks -- published blocks are still
        released on the way out.
        """
        job_list = list(jobs)
        batch = self.chunk_size(batch_docs)
        starts_before = self.pool.starts
        deadline = active_deadline()
        info = {
            "workers": self.workers,
            "batch_docs": batch,
            "pack_seconds": 0.0,
            "mine_seconds": 0.0,
            "aggregate_seconds": 0.0,
            "chunks": 0,
            "fallback_chunks": 0,
            "published": False,
            "shm_names": [],
            "pool_persistent": self.persistent,
            "pool_reused": False,
            "pool_starts": starts_before,
        }
        # Request trace ids declared by the caller (the service batcher
        # sets them around mine_documents); stamped onto chunk
        # descriptors and the run's diagnostics.
        trace_ids = active_trace_ids()
        if trace_ids:
            info["trace_ids"] = list(trace_ids)
        # Publish only when the pool would actually be used: a corpus
        # that fits one chunk (or one worker) mines in-process, so
        # copying it into shared memory would be pure waste.
        group_sizes = [
            sum(1 for _ in group_iter)
            for _, group_iter in itertools.groupby(
                job_list, key=lambda job: (job.spec, job.model)
            )
        ]
        n_chunks = sum(-(-size // batch) for size in group_sizes)
        # The breaker gates pool use *before* publish: an open breaker
        # means serial mining with no shared-memory copy and no pool
        # restart attempts at all.
        pool_budget = 0
        if self.workers > 1 and n_chunks > 1:
            pool_budget = self.supervisor.allow(n_chunks)
        parallel = pool_budget > 0
        info["breaker_state"] = self.supervisor.state
        info["pool_chunks"] = pool_budget
        started = time.perf_counter()
        corpus = pack_jobs(job_list, publish=parallel)
        info["pack_seconds"] = time.perf_counter() - started
        info["published"] = corpus.published
        info["shm_names"] = [
            group.shm.name for group in corpus.groups if group.shm is not None
        ]
        chunks = [
            (group_id, lo, min(lo + batch, group.doc_count))
            for group_id, group in enumerate(corpus.groups)
            for lo in range(0, group.doc_count, batch)
        ]
        info["chunks"] = len(chunks)
        payloads: dict[tuple[int, int, int], tuple] = {}
        worker_chunks: set = set()
        try:
            started = time.perf_counter()
            if parallel and corpus.published:
                self._mine_parallel(
                    corpus, chunks[:pool_budget], payloads, info, trace_ids,
                    deadline,
                )
                worker_chunks = set(payloads)
                self.supervisor.record_run(
                    used_pool=True, fallback_chunks=info["fallback_chunks"]
                )
            for chunk in chunks:
                if chunk in payloads:
                    continue
                if deadline is not None and deadline.expired():
                    raise DeadlineExceeded(
                        "batch deadline passed with "
                        f"{sum(1 for c in chunks if c not in payloads)} "
                        "chunk(s) unmined"
                    )
                group = corpus.groups[chunk[0]]
                payloads[chunk] = _mine_span(
                    group.spec, group.model, group.codes, group.offsets,
                    chunk[1], chunk[2],
                )
            info["mine_seconds"] = time.perf_counter() - started
        finally:
            # Blocks are strictly per-run: whatever happens above, every
            # published name is unlinked before run_jobs returns (the
            # leak guarantee tests/engine/test_shm_executor.py asserts).
            corpus.release()
            if not self.persistent:
                self.pool.close()
        info["pool_starts"] = self.pool.starts
        started = time.perf_counter()
        documents: list[DocumentResult] = []
        for chunk in chunks:
            documents.extend(
                _documents_from_payload(
                    corpus.groups[chunk[0]], chunk[1], payloads[chunk]
                )
            )
        info["aggregate_seconds"] = time.perf_counter() - started
        # Per-chunk attribution: the batcher hangs worker-chunk child
        # spans off a traced request's batch_mine from these.  The
        # worker-side span record (payload[7]) carries durations only;
        # "worker" distinguishes pool-mined chunks from in-process ones.
        info["chunk_spans"] = [
            {
                "docs": chunk[2] - chunk[1],
                "kernel_seconds": payloads[chunk][4],
                "worker": chunk in worker_chunks,
                **{
                    key: payloads[chunk][7][key]
                    for key in ("pid", "mine_seconds", "mined")
                },
            }
            for chunk in chunks
        ]
        self._report_metrics(info, payloads, starts_before)
        self.last_run_info = info
        return documents

    def _report_metrics(self, info, payloads, starts_before) -> None:
        """Fold one run's timings and the chunks' piggybacked
        :class:`~repro.obs.metrics.LocalMetrics` into the registry."""
        metrics = self.metrics
        for stage in ("pack", "mine", "aggregate"):
            metrics.histogram(
                f"repro_shm_{stage}_seconds",
                f"Wall seconds of the {stage} stage per run_jobs call",
            ).observe(info[f"{stage}_seconds"])
        metrics.counter(
            "repro_shm_chunks_total", "Chunk tasks dispatched"
        ).inc(info["chunks"])
        fallback = metrics.counter(
            "repro_shm_fallback_chunks_total",
            "Chunk tasks re-mined in-process after a worker failure",
        )
        if info["fallback_chunks"]:
            fallback.inc(info["fallback_chunks"])
        restarts = metrics.counter(
            "repro_shm_pool_starts_total", "Worker pool (re)starts"
        )
        if self.pool.starts > starts_before:
            restarts.inc(self.pool.starts - starts_before)
        metrics.gauge(
            "repro_pool_breaker_state",
            "Worker-pool circuit breaker state "
            "(0 closed, 1 open, 2 half-open)",
        ).set(self.supervisor.state_code())
        for payload in payloads.values():
            payload[6].merge_into(metrics, help=_WORKER_HELP)

    def _record_breaker_transition(self, old: str, new: str, reason: str) -> None:
        """Supervisor transition hook: bump the transition counter and
        refresh the state gauge on whatever registry is current."""
        metrics = self.metrics
        metrics.counter(
            "repro_pool_breaker_transitions_total",
            "Worker-pool circuit breaker transitions by destination state",
            labelnames=("to",),
        ).labels(to=new).inc()
        metrics.gauge(
            "repro_pool_breaker_state",
            "Worker-pool circuit breaker state "
            "(0 closed, 1 open, 2 half-open)",
        ).set(self.supervisor.state_code())

    def _mine_parallel(
        self, corpus, chunks, payloads, info, trace_ids=(), deadline=None
    ):
        """Fan chunks over the worker pool; failures stay un-filled in
        ``payloads`` for the caller's in-process pass.  An expired
        ``deadline`` while harvesting aborts the run with
        :class:`DeadlineExceeded` (remaining futures are cancelled;
        already-running workers finish into the void)."""
        info["pool_reused"] = self.pool.started
        pool = self.pool.ensure_started()
        if pool is None:
            info["fallback_chunks"] = len(chunks)
            _LOG.warning(
                "pool_unavailable", chunks=len(chunks), workers=self.workers
            )
            return
        futures: list[tuple[tuple[int, int, int], object]] = []
        broken = False
        for chunk in chunks:
            group_id, lo, hi = chunk
            # Per-task pickling carries only this span's offset slice --
            # total IPC stays O(documents), not O(chunks x documents).
            span = corpus.groups[group_id].span_descriptor(lo, hi, trace_ids)
            try:
                futures.append((chunk, pool.submit(_mine_chunk, span)))
            except concurrent.futures.process.BrokenProcessPool:
                # Workers died between runs (OOM kill, crash): the pool
                # is already broken at submit time and must be discarded
                # too, or a persistent service would silently mine
                # in-process forever.
                broken = True
                futures.append((chunk, None))
            except (OSError, RuntimeError):
                futures.append((chunk, None))
        for chunk, future in futures:
            if future is None:
                info["fallback_chunks"] += 1
                continue
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline.remaining())
            try:
                payloads[chunk] = future.result(timeout=timeout)
            except concurrent.futures.TimeoutError:
                for _, pending in futures:
                    if pending is not None and not pending.done():
                        pending.cancel()
                raise DeadlineExceeded(
                    "batch deadline passed while waiting on pool chunks"
                ) from None
            except Exception as exc:
                # Crashed worker / broken pool: leave the chunk for the
                # caller's in-process fallback.  Results cannot be
                # corrupted -- this chunk simply gets re-mined.
                info["fallback_chunks"] += 1
                _LOG.warning(
                    "worker_fallback",
                    error=type(exc).__name__,
                    chunk_docs=chunk[2] - chunk[1],
                    trace_ids=list(trace_ids),
                )
                if isinstance(exc, concurrent.futures.process.BrokenProcessPool):
                    broken = True
        if broken:
            # A broken pool never recovers; drop it so the next run (or
            # the next service request) starts a fresh one.
            self.pool.discard()
            _LOG.warning("pool_broken_discarded", workers=self.workers)

    def __repr__(self) -> str:
        return (
            f"SharedMemoryExecutor(workers={self.workers}, "
            f"batch_docs={self.batch_docs}, persistent={self.persistent})"
        )
