"""Shared Monte-Carlo calibration for corpus runs.

A single document's X²max is the maximum of O(n²) dependent chi-square
variables, so its family-wise p-value needs the Monte-Carlo null
distribution of :mod:`repro.analysis.calibration`.  Simulating that
distribution costs ``trials`` full MSS scans -- far too much to pay per
document.  Two observations make it affordable at corpus scale:

1. The distribution depends only on ``(model, n)``, and corpora share one
   model, so documents of similar length can share one simulation.
2. The distribution varies slowly with ``n`` (the mean grows like
   ``2 ln n``), so *bucketing* lengths to the next power of two changes
   p-values marginally while collapsing thousands of lengths onto a
   handful of keys.

:class:`CalibrationCache` implements exactly that: one
:class:`~repro.analysis.calibration.MSSNullDistribution` per
``(model, length_bucket(n))`` key, computed on first request and reused
for every later document -- across threads too (a lock guards the dict).
The cache lives in the driver process; worker processes only mine, so
the expensive simulation is never duplicated across the pool.

Bucketing is conservative in the useful direction: the bucket length is
``>= n``, X²max grows stochastically with ``n``, so bucketed p-values are
(weakly) larger -- calibrated significance is never overstated.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro._validation import ensure_positive_int
from repro.analysis.calibration import MSSNullDistribution, mss_null_distribution
from repro.core.model import BernoulliModel

__all__ = ["length_bucket", "CalibrationCache"]

#: Smallest bucket: documents shorter than this share one simulation.
_MIN_BUCKET = 64


def length_bucket(n: int, minimum: int = _MIN_BUCKET) -> int:
    """Round ``n`` up to the next power of two (floor ``minimum``).

    >>> length_bucket(1)
    64
    >>> length_bucket(64)
    64
    >>> length_bucket(65)
    128
    >>> length_bucket(1000)
    1024
    """
    ensure_positive_int(n, "n")
    bucket = minimum
    while bucket < n:
        bucket *= 2
    return bucket


class CalibrationCache:
    """Memoized Monte-Carlo X²max null distributions, keyed by
    ``(model, length bucket)``.

    Parameters
    ----------
    trials:
        Monte-Carlo trials per distribution (p-value resolution is
        ``1 / (trials + 1)``).
    seed:
        Base seed; each key derives a distinct deterministic stream from
        it, so cache contents do not depend on request order.
    backend:
        Kernel backend name or instance for the simulations (see
        :mod:`repro.kernels`); ``None`` defers to ``REPRO_BACKEND`` /
        the default.  Backends produce bit-identical samples, so this
        is purely a throughput knob.

    Examples
    --------
    >>> cache = CalibrationCache(trials=12, seed=0)
    >>> model = BernoulliModel.uniform("ab")
    >>> first = cache.distribution_for(model, 50)
    >>> cache.distribution_for(model, 60) is first   # same 64-bucket
    True
    >>> cache.misses, cache.hits
    (1, 1)
    """

    def __init__(self, trials: int = 100, seed: int = 0, backend=None) -> None:
        ensure_positive_int(trials, "trials")
        self.trials = trials
        self.seed = seed
        self.backend = backend
        self._distributions: dict[tuple[BernoulliModel, int], MSSNullDistribution] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._distributions)

    def __iter__(self) -> Iterator[tuple[BernoulliModel, int]]:
        return iter(dict(self._distributions))

    def distribution_for(self, model: BernoulliModel, n: int) -> MSSNullDistribution:
        """The (cached) null distribution covering documents of length ``n``."""
        bucket = length_bucket(n)
        key = (model, bucket)
        with self._lock:
            cached = self._distributions.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        # Simulate outside the lock: concurrent misses on the same key may
        # duplicate work but stay correct (the simulation is deterministic
        # per key, so whichever insert wins stores the identical result).
        distribution = mss_null_distribution(
            model, bucket, trials=self.trials, seed=self._key_seed(bucket),
            backend=self.backend,
        )
        with self._lock:
            self.misses += 1
            return self._distributions.setdefault(key, distribution)

    def p_value(self, model: BernoulliModel, n: int, x2_max: float) -> float:
        """Calibrated family-wise p-value of a document's X²max."""
        return self.distribution_for(model, n).p_value(x2_max)

    def critical_value(self, model: BernoulliModel, n: int, alpha: float) -> float:
        """Calibrated rejection threshold at family level ``alpha``."""
        return self.distribution_for(model, n).critical_value(alpha)

    def _key_seed(self, bucket: int) -> int:
        """Deterministic per-bucket seed, independent of request order."""
        return (self.seed * 1_000_003 + bucket) % (2**32)

    def summary(self) -> dict:
        """JSON-ready view of what was simulated (for CLI/bench output)."""
        return {
            "trials": self.trials,
            "seed": self.seed,
            "hits": self.hits,
            "misses": self.misses,
            "entries": [
                {
                    "k": model.k,
                    "bucket": bucket,
                    "mean_x2max": dist.mean,
                    "two_ln_n": dist.two_ln_n,
                }
                for (model, bucket), dist in sorted(
                    self._distributions.items(), key=lambda item: item[0][1]
                )
            ],
        }

    def __repr__(self) -> str:
        return (
            f"CalibrationCache(trials={self.trials}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
