"""Shared Monte-Carlo calibration for corpus runs.

A single document's X²max is the maximum of O(n²) dependent chi-square
variables, so its family-wise p-value needs the Monte-Carlo null
distribution of :mod:`repro.analysis.calibration`.  Simulating that
distribution costs ``trials`` full MSS scans -- far too much to pay per
document.  Two observations make it affordable at corpus scale:

1. The distribution depends only on ``(model, n)``, and corpora share one
   model, so documents of similar length can share one simulation.
2. The distribution varies slowly with ``n`` (the mean grows like
   ``2 ln n``), so *bucketing* lengths to the next power of two changes
   p-values marginally while collapsing thousands of lengths onto a
   handful of keys.

:class:`CalibrationCache` implements exactly that: one
:class:`~repro.analysis.calibration.MSSNullDistribution` per
``(model, length_bucket(n))`` key, computed on first request and reused
for every later document -- across threads too (a lock guards the dict).
The cache lives in the driver process; worker processes only mine, so
the expensive simulation is never duplicated across the pool.

Bucketing is conservative in the useful direction: the bucket length is
``>= n``, X²max grows stochastically with ``n``, so bucketed p-values are
(weakly) larger -- calibrated significance is never overstated.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Iterator

from repro._validation import ensure_positive_int
from repro.analysis.calibration import MSSNullDistribution, mss_null_distribution
from repro.core.model import BernoulliModel
from repro.obs.log import get_logger
from repro.obs.metrics import default_registry

__all__ = [
    "length_bucket",
    "model_fingerprint",
    "CalibrationCache",
    "SCHEMA_VERSION",
]

#: Smallest bucket: documents shorter than this share one simulation.
_MIN_BUCKET = 64

#: On-disk schema version of persisted calibration samples.  Bump it
#: whenever the sample semantics change (RNG stream, bucketing rule,
#: estimator) -- persisted files from other versions are rejected, never
#: silently reused.
SCHEMA_VERSION = 1

#: Magic string identifying our persisted-calibration JSON files.
_FORMAT = "repro-mss-calibration"

_LOG = get_logger("repro.engine.calibration")


def _fingerprint_from_values(alphabet, probabilities, trials, seed) -> str:
    """The fingerprint hash over raw (alphabet, probabilities) values.

    Shared by :func:`model_fingerprint` (live models) and
    :meth:`CalibrationCache.load` (values straight from a persisted
    file).  Hashing raw values on both sides is what makes the
    round-trip exact: reconstructing a ``BernoulliModel`` from saved
    probabilities would *re-normalise* them (a 1-ulp shift for most
    alphabets) and change the hash.
    """
    alphabet = list(alphabet)
    if not all(isinstance(symbol, str) for symbol in alphabet):
        raise TypeError(
            "calibration persistence requires string symbols; got "
            f"alphabet {alphabet!r}"
        )
    payload = {
        "schema": SCHEMA_VERSION,
        "alphabet": alphabet,
        # json.dumps renders floats with repr (shortest round-trip), so
        # the fingerprint is exact, not approximate.
        "probabilities": [float(p) for p in probabilities],
        "trials": trials,
        "seed": seed,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def model_fingerprint(model: BernoulliModel, trials: int, seed: int) -> str:
    """Content hash identifying one calibration configuration.

    Two configurations share a fingerprint exactly when they would
    produce bit-identical Monte-Carlo samples: same schema version, same
    alphabet (order matters -- it fixes symbol codes), same
    probabilities, same trial count, same base seed.  This is the key
    that makes persisted samples safe to reuse: a cache never accepts
    samples whose fingerprint it cannot reproduce from its own
    parameters.

    Only models over string symbols can be fingerprinted (persistence is
    JSON); anything else raises ``TypeError``.

    >>> model = BernoulliModel.uniform("ab")
    >>> model_fingerprint(model, 100, 0) == model_fingerprint(model, 100, 0)
    True
    >>> model_fingerprint(model, 100, 0) == model_fingerprint(model, 200, 0)
    False
    """
    return _fingerprint_from_values(
        model.alphabet, model.probabilities, trials, seed
    )


def length_bucket(n: int, minimum: int = _MIN_BUCKET) -> int:
    """Round ``n`` up to the next power of two (floor ``minimum``).

    >>> length_bucket(1)
    64
    >>> length_bucket(64)
    64
    >>> length_bucket(65)
    128
    >>> length_bucket(1000)
    1024
    """
    ensure_positive_int(n, "n")
    bucket = minimum
    while bucket < n:
        bucket *= 2
    return bucket


class CalibrationCache:
    """Memoized Monte-Carlo X²max null distributions, keyed by
    ``(model, length bucket)``.

    Parameters
    ----------
    trials:
        Monte-Carlo trials per distribution (p-value resolution is
        ``1 / (trials + 1)``).
    seed:
        Base seed; each key derives a distinct deterministic stream from
        it, so cache contents do not depend on request order.
    backend:
        Kernel backend name or instance for the simulations (see
        :mod:`repro.kernels`); ``None`` defers to ``REPRO_BACKEND`` /
        the default.  Backends produce bit-identical samples, so this
        is purely a throughput knob.
    max_entries:
        Bound on the in-memory distribution count (LRU eviction).  Every
        distinct ``(model, bucket)`` key costs ``trials`` floats forever,
        so a long-lived multi-tenant service would otherwise grow without
        bound -- one simulation per tenant model per length bucket.
        ``None`` (the default, and the right call for one-shot batch
        runs) keeps everything.  Evicting is always safe: a re-requested
        key re-simulates (or re-reads disk, for
        :class:`~repro.service.store.DiskCalibrationCache`) to
        bit-identical samples, it just costs time again.  Evictions are
        counted on :attr:`evictions` and the
        ``repro_calib_evictions_total`` metric.

    Examples
    --------
    >>> cache = CalibrationCache(trials=12, seed=0)
    >>> model = BernoulliModel.uniform("ab")
    >>> first = cache.distribution_for(model, 50)
    >>> cache.distribution_for(model, 60) is first   # same 64-bucket
    True
    >>> cache.misses, cache.hits
    (1, 1)
    """

    def __init__(
        self,
        trials: int = 100,
        seed: int = 0,
        backend=None,
        *,
        max_entries: int | None = None,
    ) -> None:
        ensure_positive_int(trials, "trials")
        if max_entries is not None:
            ensure_positive_int(max_entries, "max_entries")
        self.trials = trials
        self.seed = seed
        self.backend = backend
        self.max_entries = max_entries
        #: Distributions dropped by the LRU bound (0 while unbounded).
        self.evictions = 0
        self._distributions: dict[tuple[BernoulliModel, int], MSSNullDistribution] = {}
        #: Entries merged by :meth:`load`, keyed by ``(fingerprint,
        #: bucket)``.  Kept separate from ``_distributions`` on purpose:
        #: reconstructing a ``BernoulliModel`` from persisted floats
        #: would re-normalise them and break hash-equality with the live
        #: model, so loaded samples are matched by fingerprint at lookup
        #: time instead and promoted under the live model's key.
        self._loaded: dict[tuple[str, int], MSSNullDistribution] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: The :class:`~repro.obs.metrics.MetricsRegistry` cache events
        #: and simulation timings are reported into; a service replaces
        #: it with its own registry.
        self.metrics = default_registry()

    def _event(self, event: str) -> None:
        """Count one cache event (hit/miss/simulate/disk tier) in the
        metrics registry, labelled by kind."""
        self.metrics.counter(
            "repro_calibration_events_total",
            "Calibration cache events by kind",
            labelnames=("event",),
        ).labels(event=event).inc()

    def __len__(self) -> int:
        return len(self._distributions)

    def __iter__(self) -> Iterator[tuple[BernoulliModel, int]]:
        return iter(dict(self._distributions))

    def _cache_get(self, key) -> MSSNullDistribution | None:
        """Fetch one entry, refreshing its LRU recency (lock held)."""
        cached = self._distributions.get(key)
        if cached is not None and self.max_entries is not None:
            # Dicts preserve insertion order: re-inserting moves the key
            # to the back, so eviction always takes the least recent.
            self._distributions[key] = self._distributions.pop(key)
        return cached

    def _cache_store(self, key, distribution) -> MSSNullDistribution:
        """Insert one entry, evicting past ``max_entries`` (lock held).

        Keeps ``setdefault`` semantics: a concurrent insert that lost
        the race returns the winner's (identical) distribution.
        """
        existing = self._cache_get(key)
        if existing is not None:
            return existing
        self._distributions[key] = distribution
        if self.max_entries is not None:
            while len(self._distributions) > self.max_entries:
                oldest = next(iter(self._distributions))
                del self._distributions[oldest]
                self.evictions += 1
                self.metrics.counter(
                    "repro_calib_evictions_total",
                    "In-memory calibration distributions dropped by the "
                    "LRU bound.",
                ).inc()
                _LOG.debug(
                    "calibration_evict",
                    bucket=oldest[1],
                    max_entries=self.max_entries,
                )
        return distribution

    def distribution_for(self, model: BernoulliModel, n: int) -> MSSNullDistribution:
        """The (cached) null distribution covering documents of length ``n``."""
        bucket = length_bucket(n)
        key = (model, bucket)
        with self._lock:
            cached = self._cache_get(key)
            if cached is not None:
                self.hits += 1
        if cached is not None:
            self._event("memory_hit")
            return cached
        loaded = self._loaded_entry(model, bucket)
        if loaded is not None:
            self._event("loaded_hit")
            with self._lock:
                self.hits += 1
                return self._cache_store(key, loaded)
        # Simulate outside the lock: concurrent misses on the same key may
        # duplicate work but stay correct (the simulation is deterministic
        # per key, so whichever insert wins stores the identical result).
        started = time.perf_counter()
        distribution = self._simulate(model, bucket)
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "repro_calibration_simulate_seconds",
            "Wall seconds per Monte-Carlo calibration simulation",
        ).observe(elapsed)
        self._event("simulate")
        _LOG.info(
            "calibration_simulate",
            bucket=bucket,
            trials=self.trials,
            seconds=round(elapsed, 6),
        )
        with self._lock:
            self.misses += 1
            return self._cache_store(key, distribution)

    def _loaded_entry(self, model, bucket) -> MSSNullDistribution | None:
        """A :meth:`load`-ed distribution for this exact configuration.

        Matched by the *live* model's fingerprint, so only a model whose
        alphabet and probabilities are bit-identical to the saved ones
        (plus matching trials/seed) ever reuses persisted samples.
        """
        if not self._loaded:
            return None
        try:
            fingerprint = model_fingerprint(model, self.trials, self.seed)
        except TypeError:
            return None  # non-string symbols are never persisted
        with self._lock:
            return self._loaded.get((fingerprint, bucket))

    def _simulate(self, model: BernoulliModel, bucket: int) -> MSSNullDistribution:
        """Run the Monte-Carlo simulation for one (model, bucket) key.

        The single choke-point for simulation work: the disk-backed
        subclass (:class:`repro.service.store.DiskCalibrationCache`)
        only simulates through here, which is what the service's
        zero-trials-on-warm-restart test instruments.
        """
        return mss_null_distribution(
            model, bucket, trials=self.trials, seed=self._key_seed(bucket),
            backend=self.backend,
        )

    def p_value(self, model: BernoulliModel, n: int, x2_max: float) -> float:
        """Calibrated family-wise p-value of a document's X²max."""
        return self.distribution_for(model, n).p_value(x2_max)

    def critical_value(self, model: BernoulliModel, n: int, alpha: float) -> float:
        """Calibrated rejection threshold at family level ``alpha``."""
        return self.distribution_for(model, n).critical_value(alpha)

    def _key_seed(self, bucket: int) -> int:
        """Deterministic per-bucket seed, independent of request order."""
        return (self.seed * 1_000_003 + bucket) % (2**32)

    def save(self, path: str | os.PathLike) -> int:
        """Persist every simulated distribution to ``path`` (JSON).

        The file carries a schema version plus a per-entry
        :func:`model_fingerprint`, so a later :meth:`load` can verify
        the samples were produced by *exactly* this configuration
        (alphabet, probabilities, trials, seed) before reusing them.
        The write is atomic (temp file + ``os.replace``).  Returns the
        number of entries written; models over non-string symbols cannot
        be serialised and raise ``TypeError``.
        """
        with self._lock:
            items = list(self._distributions.items())
        entries = []
        for (model, bucket), distribution in items:
            entries.append({
                "fingerprint": model_fingerprint(model, self.trials, self.seed),
                "alphabet": list(model.alphabet),
                "probabilities": list(model.probabilities),
                "bucket": bucket,
                "samples": list(distribution.samples),
            })
        entries.sort(key=lambda entry: (entry["fingerprint"], entry["bucket"]))
        data = {
            "format": _FORMAT,
            "schema": SCHEMA_VERSION,
            "trials": self.trials,
            "seed": self.seed,
            "entries": entries,
        }
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        os.replace(tmp, path)
        return len(entries)

    def load(self, path: str | os.PathLike) -> int:
        """Merge distributions persisted by :meth:`save` into the cache.

        Every safety property is checked before a single sample is
        reused, and any mismatch raises ``ValueError`` instead of
        silently serving samples from a different configuration:

        * file format marker and :data:`SCHEMA_VERSION` must match;
        * the file's ``trials`` / ``seed`` must equal this cache's;
        * each entry's stored fingerprint must equal the fingerprint
          recomputed from the entry's own raw model parameters and this
          cache's ``trials``/``seed`` (detects tampering and parameter
          drift);
        * each entry must carry exactly ``trials`` samples.

        Loaded entries are matched at lookup time by the live model's
        fingerprint (see :meth:`_loaded_entry`) and count as hits when
        used; simulation only runs when nothing matches.  Returns the
        number of entries merged.
        """
        with open(os.fspath(path), encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            raise ValueError(f"{path!s} is not a persisted calibration cache")
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path!s} has schema {data.get('schema')!r}; this version "
                f"reads schema {SCHEMA_VERSION} only"
            )
        if data.get("trials") != self.trials or data.get("seed") != self.seed:
            raise ValueError(
                f"{path!s} was simulated with trials={data.get('trials')!r}, "
                f"seed={data.get('seed')!r}; this cache is configured with "
                f"trials={self.trials}, seed={self.seed} -- refusing to reuse "
                f"samples from a different configuration"
            )
        loaded = 0
        for entry in data.get("entries", []):
            bucket = int(entry["bucket"])
            # Verify integrity against the entry's own raw values --
            # never through a reconstructed BernoulliModel, whose
            # re-normalisation would shift the floats by an ulp and
            # reject legitimately saved files.
            expected = _fingerprint_from_values(
                entry["alphabet"], entry["probabilities"],
                self.trials, self.seed,
            )
            if entry.get("fingerprint") != expected:
                raise ValueError(
                    f"{path!s}: entry for bucket {bucket} "
                    f"(k={len(entry['alphabet'])}) has fingerprint "
                    f"{entry.get('fingerprint')!r}, expected {expected!r} -- "
                    f"model parameters do not match the stored samples"
                )
            samples = tuple(float(value) for value in entry["samples"])
            if len(samples) != self.trials:
                raise ValueError(
                    f"{path!s}: entry for bucket {bucket} has {len(samples)} "
                    f"samples, expected {self.trials}"
                )
            distribution = MSSNullDistribution(
                n=bucket, alphabet_size=len(entry["alphabet"]), samples=samples
            )
            with self._lock:
                self._loaded.setdefault((expected, bucket), distribution)
            loaded += 1
        return loaded

    def summary(self) -> dict:
        """JSON-ready view of what was simulated (for CLI/bench output)."""
        return {
            "trials": self.trials,
            "seed": self.seed,
            "hits": self.hits,
            "misses": self.misses,
            "max_entries": self.max_entries,
            "evictions": self.evictions,
            "entries": [
                {
                    "k": model.k,
                    "bucket": bucket,
                    "mean_x2max": dist.mean,
                    "two_ln_n": dist.two_ln_n,
                }
                for (model, bucket), dist in sorted(
                    self._distributions.items(), key=lambda item: item[0][1]
                )
            ],
        }

    def __repr__(self) -> str:
        return (
            f"CalibrationCache(trials={self.trials}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
