"""Shared argument validators.

Small, typed error messages beat silent misbehaviour: every public entry
point funnels its arguments through these helpers so that a user who feeds
a probability of 0, an empty string or a negative threshold gets told
exactly what is wrong.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "ensure_positive_int",
    "ensure_non_negative_int",
    "ensure_probability_vector",
    "ensure_finite",
]


def ensure_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive integer, else raise ``ValueError``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_finite(value: float, name: str) -> float:
    """Return ``value`` as a finite float, else raise ``ValueError``."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def ensure_probability_vector(
    probabilities: Sequence[float], *, minimum_size: int = 2, tolerance: float = 1e-9
) -> tuple[float, ...]:
    """Validate a multinomial probability vector.

    Requires at least ``minimum_size`` entries, every entry strictly inside
    ``(0, 1)`` and a total within ``tolerance`` of 1.  Returns the vector
    re-normalised to sum exactly to 1 (so chains of float literals such as
    ``[0.1] * 10`` are accepted).
    """
    probs = tuple(float(p) for p in probabilities)
    if len(probs) < minimum_size:
        raise ValueError(
            f"need at least {minimum_size} probabilities, got {len(probs)}"
        )
    for p in probs:
        if not math.isfinite(p) or p <= 0.0:
            raise ValueError(
                f"every probability must be finite and > 0 (chi-square "
                f"divides by them), got {p!r}"
            )
    total = sum(probs)
    if abs(total - 1.0) > tolerance:
        raise ValueError(
            f"probabilities must sum to 1 (within {tolerance}), got {total!r}"
        )
    if total != 1.0:
        probs = tuple(p / total for p in probs)
    for p in probs:
        if p >= 1.0:
            raise ValueError(
                f"every probability must be < 1 with k >= 2 symbols, got {p!r}"
            )
    return probs
