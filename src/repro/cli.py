"""Command-line interface: ``repro-mss`` (or ``python -m repro.cli``).

Subcommands map one-to-one onto the paper's four problems plus a
generator for experimenting:

* ``mss``        -- Problem 1: the most significant substring.
* ``top``        -- Problem 2: the top-t substrings.
* ``threshold``  -- Problem 3: all substrings with X² above a threshold.
* ``minlength``  -- Problem 4: the MSS with a length floor.
* ``generate``   -- emit a synthetic string (null / geometric / zipf /
  markov / correlated) for piping back into the miners.
* ``calibrate``  -- Monte-Carlo family-wise critical values for X²max
  (the look-elsewhere-corrected significance threshold).
* ``stream``     -- online MSS over stdin with bounded memory
  (chunk + overlap; exact for anomalies up to the overlap length).
* ``batch``      -- mine a whole corpus (directory of files, or one
  document per line) concurrently with corrected significance
  (Bonferroni / Benjamini-Hochberg), via :mod:`repro.engine`.
* ``serve``      -- run the async mining service (:mod:`repro.service`):
  JSON/HTTP ``POST /mine`` with request micro-batching, a persistent
  shared-memory worker pool, deterministic 429 backpressure, and an
  optional disk-backed calibration cache (``--calibrate``).
* ``route``      -- run the shard router (:mod:`repro.router`): spawn
  ``--shards N`` serve processes (or front ``--upstream`` ones) behind
  one address, with consistent-hash batch affinity, health ejection,
  idempotent failover, and aggregated ``/metrics``/``/stats``.

Input is a text file (or stdin with ``-``); the alphabet defaults to the
distinct characters of the input with maximum-likelihood probabilities,
or is given explicitly with ``--alphabet``/``--probs``.  Output is
human-readable by default, JSON with ``--json``.  Every mining command
accepts ``--backend`` to pick a scan kernel (``numpy`` vectorised
default, ``native`` compiled-C, ``python`` reference -- identical
results, see :mod:`repro.kernels`); the ``REPRO_BACKEND`` environment
variable sets the session-wide default.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.minlength import find_mss_min_length
from repro.core.model import BernoulliModel
from repro.core.mss import find_mss
from repro.core.results import SignificantSubstring
from repro.core.threshold import find_above_threshold
from repro.core.topt import find_top_t

__all__ = ["main", "build_parser"]


def _read_text(path: str) -> str:
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    return _chomp(text)


def _chomp(text: str) -> str:
    """Drop a single trailing newline, nothing else.

    Stripping whitespace wholesale would silently delete meaningful
    leading/trailing symbols -- an anomaly at the very start or end of
    the file is exactly what a miner must not lose.
    """
    if text.endswith("\r\n"):
        return text[:-2]
    if text.endswith(("\n", "\r")):
        return text[:-1]
    return text


def _parse_probs(symbols: list, probs: str) -> list[float]:
    """Parse a ``--probs`` CSV and check it matches the alphabet length."""
    try:
        values = [float(x) for x in probs.split(",")]
    except ValueError:
        raise SystemExit(
            f"--probs must be comma-separated numbers, got {probs!r}"
        ) from None
    if len(values) != len(symbols):
        raise SystemExit(
            f"--probs has {len(values)} values but --alphabet has "
            f"{len(symbols)} symbols"
        )
    return values


def _build_model(text: str, alphabet: str | None, probs: str | None) -> BernoulliModel:
    if probs is not None and alphabet is None:
        raise SystemExit("--probs requires --alphabet")
    if alphabet is None:
        return BernoulliModel.from_string(text)
    symbols = list(alphabet)
    if probs is None:
        return BernoulliModel.from_string(text, alphabet=symbols, laplace=1.0)
    return BernoulliModel(symbols, _parse_probs(symbols, probs))


def _substring_payload(s: SignificantSubstring, text: str, preview: int = 60) -> dict:
    snippet = text[s.start : s.end]
    if len(snippet) > preview:
        snippet = snippet[: preview - 3] + "..."
    return {
        "start": s.start,
        "end": s.end,
        "length": s.length,
        "chi_square": round(s.chi_square, 6),
        "p_value": s.p_value,
        "counts": list(s.counts),
        "preview": snippet,
    }


def _emit(payload: dict, as_json: bool) -> None:
    if as_json:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    def render(entry: dict) -> str:
        return (
            f"  [{entry['start']}, {entry['end']})  len={entry['length']}"
            f"  X2={entry['chi_square']:.4f}  p={entry['p_value']:.3g}"
            f"  {entry['preview']!r}"
        )
    print(f"n={payload['n']}  k={payload['k']}  evaluated={payload['evaluated']}")
    for entry in payload["substrings"]:
        print(render(entry))


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mss",
        description="Mine statistically significant substrings (chi-square).",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="input text file, or - for stdin")
        p.add_argument("--alphabet", help="explicit alphabet, e.g. 'ab'")
        p.add_argument(
            "--probs",
            help="comma-separated null probabilities matching --alphabet",
        )
        add_backend(p)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            default=None,
            help="kernel backend: 'numpy' (vectorised, default), "
                 "'native' (compiled C, falls back to numpy without a "
                 "compiler) or 'python' (reference); results are "
                 "identical (env: REPRO_BACKEND)",
        )

    mss = sub.add_parser("mss", help="most significant substring (Problem 1)")
    common(mss)

    top = sub.add_parser("top", help="top-t substrings (Problem 2)")
    common(top)
    top.add_argument("-t", type=int, default=10, help="how many substrings")

    threshold = sub.add_parser(
        "threshold", help="substrings with X2 above a threshold (Problem 3)"
    )
    common(threshold)
    threshold.add_argument("--alpha", type=float, required=True, help="X2 threshold")
    threshold.add_argument(
        "--limit", type=int, default=1000, help="cap on reported substrings"
    )

    minlength = sub.add_parser(
        "minlength", help="MSS among substrings of a minimum length (Problem 4)"
    )
    common(minlength)
    minlength.add_argument(
        "--min-length", type=int, required=True, help="inclusive length floor"
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="Monte-Carlo critical value of X2max (family-wise threshold)",
    )
    calibrate.add_argument("-n", type=int, required=True, help="string length")
    calibrate.add_argument("-k", type=int, default=2, help="alphabet size (<= 26)")
    calibrate.add_argument("--alpha", type=float, default=0.05,
                           help="family-wise significance level")
    calibrate.add_argument("--trials", type=int, default=100,
                           help="Monte-Carlo trials")
    calibrate.add_argument("--seed", type=int, default=0, help="random seed")
    add_backend(calibrate)

    stream = sub.add_parser(
        "stream", help="online MSS over a stream (bounded memory)"
    )
    common(stream)
    stream.add_argument("--chunk", type=int, default=4096,
                        help="symbols dropped per flush")
    stream.add_argument("--overlap", type=int, default=512,
                        help="symbols retained across flushes "
                             "(exact detection up to this length)")

    batch = sub.add_parser(
        "batch",
        help="mine a corpus of documents concurrently (repro.engine)",
    )
    batch.add_argument(
        "input",
        help="directory of text files, a file with one document per line, "
             "or - for one document per stdin line",
    )
    batch.add_argument(
        "--problem",
        choices=["mss", "top", "threshold", "minlength"],
        default="mss",
        help="which of the paper's problems to run per document",
    )
    batch.add_argument("-t", type=int, default=10,
                       help="top-t size (--problem top)")
    batch.add_argument("--threshold", type=float, default=0.0,
                       help="X2 cut-off (--problem threshold)")
    batch.add_argument("--min-length", type=int, default=1,
                       help="length floor (--problem minlength)")
    batch.add_argument("--limit", type=int, default=1000,
                       help="cap on reported substrings per document")
    batch.add_argument("--workers", type=int, default=1,
                       help="parallel workers (1 = serial)")
    batch.add_argument(
        "--batch-docs",
        type=int,
        default=None,
        metavar="N",
        help="mine documents N at a time through one kernel call per batch "
             "(identical results; amortises per-document dispatch)",
    )
    batch.add_argument(
        "--executor",
        choices=["serial", "thread", "process", "shm"],
        default=None,
        help="fan-out strategy (default: shm -- zero-copy shared-memory "
             "workers -- when --workers > 1)",
    )
    batch.add_argument(
        "--correction",
        choices=["none", "bonferroni", "bh"],
        default="bh",
        help="multiple-testing correction across documents",
    )
    batch.add_argument("--alpha", type=float, default=0.05,
                       help="corpus-level significance level")
    batch.add_argument(
        "--calibrate",
        action="store_true",
        help="Monte-Carlo family-wise p-values (cached per length bucket) "
             "instead of asymptotic chi-square p-values",
    )
    batch.add_argument("--trials", type=int, default=100,
                       help="Monte-Carlo trials per calibration bucket")
    batch.add_argument("--seed", type=int, default=0,
                       help="calibration random seed")
    batch.add_argument("--alphabet", help="explicit shared alphabet, e.g. 'ab'")
    batch.add_argument(
        "--probs",
        help="comma-separated null probabilities matching --alphabet",
    )
    add_backend(batch)

    serve = sub.add_parser(
        "serve",
        help="run the async mining service (repro.service)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (0 = ephemeral; default 8765)")
    serve.add_argument(
        "--alphabet",
        required=True,
        help="the service's default alphabet, e.g. 'ab' (requests may "
             "override with their own)",
    )
    serve.add_argument(
        "--probs",
        help="comma-separated null probabilities matching --alphabet "
             "(default: uniform)",
    )
    serve.add_argument("--workers", type=int, default=1,
                       help="persistent mining worker processes "
                            "(1 = in-process serial)")
    serve.add_argument(
        "--batch-docs",
        type=int,
        default=32,
        metavar="N",
        help="micro-batch target: concurrent requests coalesce into "
             "batches of up to N documents",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="DOCS",
        help="backpressure bound on queued documents; beyond it requests "
             "get 429 + Retry-After",
    )
    serve.add_argument(
        "--tenant-fair-share",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="fraction of --max-pending any one tenant (null model) may "
             "hold queued; beyond it that tenant gets 429 while others "
             "keep being admitted (default 1.0 = no per-tenant cap)",
    )
    serve.add_argument(
        "--linger-ms",
        type=float,
        default=2.0,
        help="how long a batch waits for companion requests (0 = "
             "dispatch eagerly)",
    )
    serve.add_argument(
        "--default-timeout-ms",
        type=int,
        default=None,
        metavar="MS",
        help="deadline applied to requests that do not send their own "
             "timeout_ms; expired requests are answered 504 "
             "(default: no deadline)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long shutdown waits for in-flight requests while new "
             "ones are refused with 503 (default 10s)",
    )
    serve.add_argument(
        "--correction",
        choices=["none", "bonferroni", "bh"],
        default="bh",
        help="default per-request multiple-testing correction",
    )
    serve.add_argument("--alpha", type=float, default=0.05,
                       help="default per-request significance level")
    serve.add_argument(
        "--calibrate",
        action="store_true",
        help="Monte-Carlo family-wise p-values via a disk-backed "
             "calibration cache (warm restarts skip the simulation)",
    )
    serve.add_argument("--trials", type=int, default=100,
                       help="Monte-Carlo trials per calibration bucket")
    serve.add_argument("--seed", type=int, default=0,
                       help="calibration random seed")
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="calibration store directory (default: "
             "$XDG_CACHE_HOME/repro-mss or ~/.cache/repro-mss)",
    )
    serve.add_argument(
        "--calib-cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="LRU bound on in-memory calibration distributions; evicted "
             "entries re-load from disk (--calibrate's store) or "
             "re-simulate bit-identically (default: unbounded)",
    )
    serve.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        help="structured log output: human-readable text or JSON lines "
             "on stderr",
    )
    serve.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="info",
        help="minimum level for structured log events (access logs are "
             "'info')",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of request traces recorded (head sampling, "
             "deterministic on the trace id so router and shards agree; "
             "errors and slow requests are always kept; default 1.0)",
    )
    serve.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help="append every kept trace tree to PATH as JSON lines",
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="enforce latency/error objectives on /mine, e.g. "
             "'p99:250ms,errors:0.1%%'; multi-window burn rates render "
             "on /metrics and a fast burn flips /healthz to degraded",
    )
    add_backend(serve)

    route = sub.add_parser(
        "route",
        help="run the shard router over N serve processes (repro.router)",
    )
    route.add_argument("--host", default="127.0.0.1",
                       help="router bind address (default 127.0.0.1)")
    route.add_argument("--port", type=int, default=8799,
                       help="router bind port (0 = ephemeral; default 8799)")
    fleet = route.add_mutually_exclusive_group(required=True)
    fleet.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="spawn N owned `serve --port 0` shard processes (drained "
             "shard-by-shard on shutdown)",
    )
    fleet.add_argument(
        "--upstream",
        metavar="HOST:PORT,...",
        help="front already-running services instead of spawning "
             "(comma-separated addresses; they outlive the router)",
    )
    route.add_argument(
        "--replicas",
        type=int,
        default=128,
        help="virtual nodes per shard on the consistent-hash ring "
             "(default 128)",
    )
    route.add_argument(
        "--health-interval-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="/healthz sweep period; dead or degraded shards are ejected "
             "from the ring and rejoin when they recover (default 500)",
    )
    route.add_argument(
        "--fail-after",
        type=int,
        default=2,
        metavar="N",
        help="consecutive failed probes before a shard is ejected as "
             "dead (default 2)",
    )
    route.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-stage bound on the ordered shutdown drain (default 10s)",
    )
    # Spawned-shard configuration: forwarded verbatim to each
    # `serve --port 0` child (--shards mode only).
    route.add_argument("--alphabet",
                       help="shards' default alphabet (required with "
                            "--shards)")
    route.add_argument("--probs",
                       help="comma-separated null probabilities matching "
                            "--alphabet")
    route.add_argument("--workers", type=int, default=1,
                       help="mining worker processes per shard")
    route.add_argument("--batch-docs", type=int, default=32, metavar="N",
                       help="per-shard micro-batch target")
    route.add_argument("--max-pending", type=int, default=1024,
                       metavar="DOCS", help="per-shard backpressure bound")
    route.add_argument("--linger-ms", type=float, default=2.0,
                       help="per-shard batch coalescing window")
    route.add_argument("--tenant-fair-share", type=float, default=1.0,
                       metavar="FRACTION",
                       help="per-shard per-tenant quota (see serve)")
    route.add_argument("--default-timeout-ms", type=int, default=None,
                       metavar="MS",
                       help="per-shard default request deadline")
    route.add_argument("--correction",
                       choices=["none", "bonferroni", "bh"], default="bh",
                       help="shards' default multiple-testing correction")
    route.add_argument("--alpha", type=float, default=0.05,
                       help="shards' default significance level")
    route.add_argument("--calibrate", action="store_true",
                       help="shards use disk-backed Monte-Carlo "
                            "calibration")
    route.add_argument("--trials", type=int, default=100,
                       help="Monte-Carlo trials per calibration bucket")
    route.add_argument("--seed", type=int, default=0,
                       help="calibration random seed")
    route.add_argument("--cache-dir", default=None,
                       help="shards' shared calibration store directory")
    route.add_argument("--calib-cache-entries", type=int, default=None,
                       metavar="N",
                       help="per-shard in-memory calibration LRU bound")
    route.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        help="router structured log output on stderr",
    )
    route.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="info",
        help="minimum level for router log events",
    )
    route.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="trace sampling rate for the router AND the spawned "
             "shards (deterministic on the trace id, so one request "
             "is kept everywhere or nowhere; default 1.0)",
    )
    route.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help="router-side JSON-lines trace sink (shards keep their "
             "in-memory rings; GET /trace/<id> assembles across them)",
    )
    route.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="per-shard SLO spec forwarded to every spawned shard "
             "(e.g. 'p99:250ms,errors:0.1%%')",
    )
    add_backend(route)

    generate = sub.add_parser("generate", help="emit a synthetic string")
    generate.add_argument(
        "kind",
        choices=["null", "geometric", "zipf", "markov", "correlated"],
        help="generator family",
    )
    generate.add_argument("-n", type=int, default=1000, help="string length")
    generate.add_argument("-k", type=int, default=2, help="alphabet size (<= 26)")
    generate.add_argument("--seed", type=int, default=0, help="random seed")
    generate.add_argument(
        "--same-prob",
        type=float,
        default=0.5,
        help="correlated generator: probability of repeating the last symbol",
    )

    # Accept --json after the subcommand too (`repro-mss batch ... --json`).
    # SUPPRESS keeps the top-level value when the flag is absent here --
    # a plain default would clobber a --json given before the subcommand.
    for subparser in (mss, top, threshold, minlength, calibrate, stream,
                      batch, serve, route, generate):
        subparser.add_argument(
            "--json",
            action="store_true",
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if getattr(args, "backend", None) is not None:
        from repro.kernels import get_backend

        try:
            get_backend(args.backend)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    if args.command == "generate":
        return _run_generate(args)
    if args.command == "calibrate":
        return _run_calibrate(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "route":
        return _run_route(args)

    text = _read_text(args.file)
    if not text:
        raise SystemExit("input is empty")
    if args.alphabet is None and len(set(text)) < 2:
        raise SystemExit(
            "input uses fewer than 2 distinct symbols; there is nothing to "
            "mine (pass --alphabet to score it against a wider alphabet)"
        )
    model = _build_model(text, args.alphabet, args.probs)

    if args.command == "mss":
        result = find_mss(text, model, backend=args.backend)
        substrings = [result.best]
        stats = result.stats
    elif args.command == "stream":
        from repro.extensions.streaming import StreamingMSS

        miner = StreamingMSS(model, chunk=args.chunk, overlap=args.overlap,
                             backend=args.backend)
        miner.feed(text)
        best = miner.finish()
        payload = {
            "n": miner.symbols_seen,
            "k": model.k,
            "evaluated": miner.flushes,
            "skipped": 0,
            "elapsed_seconds": 0.0,
            "exact_length_limit": miner.exact_length_limit,
            "substrings": [_substring_payload(best, text)],
        }
        _emit(payload, args.json)
        return 0
    elif args.command == "top":
        result = find_top_t(text, model, args.t, backend=args.backend)
        substrings = result.substrings
        stats = result.stats
    elif args.command == "threshold":
        result = find_above_threshold(
            text, model, args.alpha, limit=args.limit, backend=args.backend
        )
        substrings = result.substrings
        stats = result.stats
    else:  # minlength
        result = find_mss_min_length(
            text, model, args.min_length, backend=args.backend
        )
        substrings = [result.best]
        stats = result.stats

    payload = {
        "n": stats.n,
        "k": model.k,
        "evaluated": stats.substrings_evaluated,
        "skipped": stats.positions_skipped,
        "elapsed_seconds": stats.elapsed_seconds,
        "substrings": [_substring_payload(s, text) for s in substrings],
    }
    _emit(payload, args.json)
    return 0


def _read_corpus(source: str) -> tuple[list[str], list[str]]:
    """Load a corpus as (doc_ids, texts).

    A directory yields one document per (sorted) regular file; anything
    else is read as one document per line (``-`` reads stdin).  Empty
    documents are dropped -- there is nothing to mine in them.
    """
    import os

    ids: list[str] = []
    texts: list[str] = []
    if source != "-" and os.path.isdir(source):
        for name in sorted(os.listdir(source)):
            path = os.path.join(source, name)
            if not os.path.isfile(path):
                continue
            with open(path, encoding="utf-8") as handle:
                text = _chomp(handle.read())
            if text:
                ids.append(name)
                texts.append(text)
    else:
        if source == "-":
            lines = sys.stdin.read().splitlines()
        else:
            with open(source, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        for number, line in enumerate(lines, start=1):
            if line:
                ids.append(f"line-{number:04d}")
                texts.append(line)
    return ids, texts


def _run_batch(args: argparse.Namespace) -> int:
    from repro.engine import (
        CalibrationCache,
        CorpusEngine,
        JobSpec,
        resolve_executor,
    )

    ids, texts = _read_corpus(args.input)
    if not texts:
        raise SystemExit("corpus is empty")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.batch_docs is not None and args.batch_docs < 1:
        raise SystemExit("--batch-docs must be >= 1")
    if args.calibrate and args.trials < 10:
        raise SystemExit("--trials must be >= 10 for a usable Monte-Carlo "
                         "null distribution")

    if args.alphabet is None and args.probs is not None:
        raise SystemExit("--probs requires --alphabet")
    if args.alphabet is None and len({s for text in texts for s in text}) < 2:
        raise SystemExit("corpus uses fewer than 2 distinct symbols; "
                         "there is nothing to mine")
    model = _build_model("".join(texts), args.alphabet, args.probs)

    spec = JobSpec(
        problem=args.problem,
        t=args.t,
        threshold=args.threshold,
        min_length=args.min_length,
        limit=args.limit,
        backend=args.backend,
    )
    executor_name = args.executor or ("shm" if args.workers > 1 else "serial")
    engine = CorpusEngine(
        executor=resolve_executor(executor_name, workers=args.workers),
        calibration=(
            CalibrationCache(
                trials=args.trials, seed=args.seed, backend=args.backend
            )
            if args.calibrate
            else None
        ),
        correction=args.correction,
        alpha=args.alpha,
        batch_docs=args.batch_docs,
    )
    result = engine.run_texts(texts, model, spec, ids=ids)

    if args.json:
        json.dump(result.payload(), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    print(
        f"documents={len(result)}  symbols={result.stats.n}  "
        f"executor={result.executor}x{result.workers}  "
        f"correction={result.correction}  alpha={result.alpha}  "
        f"significant={result.n_significant}"
    )
    for doc, text in zip(result.documents, texts):
        best = doc.best
        flag = "*" if doc.significant else " "
        if best is None:
            print(f" {flag} {doc.doc_id}: no substring above the threshold")
            continue
        entry = _substring_payload(best, text)
        print(
            f" {flag} {doc.doc_id}: [{best.start}, {best.end})"
            f"  X2={best.chi_square:.4f}  p={doc.p_value:.3g}"
            f"  p_adj={doc.p_corrected:.3g}  {entry['preview']!r}"
        )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.obs.log import configure as configure_logging
    from repro.service import DiskCalibrationCache, MiningService

    configure_logging(format=args.log_format, level=args.log_level)
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.batch_docs < 1:
        raise SystemExit("--batch-docs must be >= 1")
    if args.max_pending < 1:
        raise SystemExit("--max-pending must be >= 1")
    if not 0.0 < args.tenant_fair_share <= 1.0:
        raise SystemExit("--tenant-fair-share must be in (0, 1]")
    if args.calib_cache_entries is not None and args.calib_cache_entries < 1:
        raise SystemExit("--calib-cache-entries must be >= 1")
    if args.linger_ms < 0:
        raise SystemExit("--linger-ms must be >= 0")
    if args.default_timeout_ms is not None and args.default_timeout_ms < 1:
        raise SystemExit("--default-timeout-ms must be >= 1")
    if args.drain_timeout < 0:
        raise SystemExit("--drain-timeout must be >= 0")
    if args.calibrate and args.trials < 10:
        raise SystemExit("--trials must be >= 10 for a usable Monte-Carlo "
                         "null distribution")
    if not 0.0 <= args.trace_sample <= 1.0:
        raise SystemExit("--trace-sample must be in [0, 1]")
    if args.slo is not None:
        from repro.obs.slo import parse_slo_spec

        try:
            parse_slo_spec(args.slo)
        except ValueError as exc:
            raise SystemExit(f"--slo: {exc}") from None
    symbols = list(args.alphabet)
    if args.probs is None:
        model = BernoulliModel.uniform(symbols)
    else:
        model = BernoulliModel(symbols, _parse_probs(symbols, args.probs))

    calibration = (
        DiskCalibrationCache(
            args.cache_dir, trials=args.trials, seed=args.seed,
            backend=args.backend, max_entries=args.calib_cache_entries,
        )
        if args.calibrate
        else None
    )
    service = MiningService(
        model,
        workers=args.workers,
        batch_docs=args.batch_docs,
        max_pending_docs=args.max_pending,
        linger_seconds=args.linger_ms / 1000.0,
        tenant_fair_share=args.tenant_fair_share,
        correction=args.correction,
        alpha=args.alpha,
        calibration=calibration,
        backend=args.backend,
        default_timeout_ms=args.default_timeout_ms,
        drain_timeout=args.drain_timeout,
        trace_sample=args.trace_sample,
        trace_log=args.trace_log,
        slo=args.slo,
    )
    cache_note = (
        f"  cache={calibration.cache_dir}" if calibration is not None else ""
    )

    def announce(bound):
        # Printed only once the socket is bound, so an ephemeral
        # --port 0 reports the port actually chosen.
        print(
            f"repro-mss serve: http://{bound[0]}:{bound[1]}  "
            f"workers={args.workers}  batch_docs={args.batch_docs}  "
            f"max_pending={args.max_pending}{cache_note}",
            flush=True,
        )

    service.run(args.host, args.port, on_bound=announce)
    return 0


def _shard_serve_args(args: argparse.Namespace) -> list[str]:
    """The ``serve`` argv each spawned shard runs with (after --port 0)."""
    shard_args = [
        "--alphabet", args.alphabet,
        "--workers", str(args.workers),
        "--batch-docs", str(args.batch_docs),
        "--max-pending", str(args.max_pending),
        "--linger-ms", str(args.linger_ms),
        "--tenant-fair-share", str(args.tenant_fair_share),
        "--correction", args.correction,
        "--alpha", str(args.alpha),
        "--log-format", args.log_format,
        "--log-level", args.log_level,
    ]
    if args.probs is not None:
        shard_args += ["--probs", args.probs]
    if args.default_timeout_ms is not None:
        shard_args += ["--default-timeout-ms", str(args.default_timeout_ms)]
    if args.trace_sample != 1.0:
        shard_args += ["--trace-sample", str(args.trace_sample)]
    if args.slo is not None:
        shard_args += ["--slo", args.slo]
    if args.calibrate:
        shard_args += ["--calibrate", "--trials", str(args.trials),
                       "--seed", str(args.seed)]
        if args.cache_dir is not None:
            shard_args += ["--cache-dir", args.cache_dir]
        if args.calib_cache_entries is not None:
            shard_args += ["--calib-cache-entries",
                           str(args.calib_cache_entries)]
    if args.backend is not None:
        shard_args += ["--backend", args.backend]
    return shard_args


def _run_route(args: argparse.Namespace) -> int:
    from repro.obs.log import configure as configure_logging
    from repro.router import RouterService, ShardProcess

    configure_logging(format=args.log_format, level=args.log_level)
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if args.health_interval_ms <= 0:
        raise SystemExit("--health-interval-ms must be > 0")
    if args.fail_after < 1:
        raise SystemExit("--fail-after must be >= 1")
    if args.drain_timeout < 0:
        raise SystemExit("--drain-timeout must be >= 0")
    if not 0.0 <= args.trace_sample <= 1.0:
        raise SystemExit("--trace-sample must be in [0, 1]")
    if args.slo is not None:
        from repro.obs.slo import parse_slo_spec

        try:
            parse_slo_spec(args.slo)
        except ValueError as exc:
            raise SystemExit(f"--slo: {exc}") from None

    processes: list[ShardProcess] = []
    upstreams: list[tuple[str, int]] = []
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("--shards must be >= 1")
        if args.alphabet is None:
            raise SystemExit("--shards requires --alphabet (the spawned "
                             "shards' default model)")
        if not 0.0 < args.tenant_fair_share <= 1.0:
            raise SystemExit("--tenant-fair-share must be in (0, 1]")
        shard_args = _shard_serve_args(args)
        try:
            for index in range(args.shards):
                shard = ShardProcess(shard_args, name=f"shard-{index}")
                shard.start()
                processes.append(shard)
        except Exception:
            for shard in processes:
                shard.kill()
            raise
    else:
        for entry in args.upstream.split(","):
            host, _, port = entry.strip().rpartition(":")
            if not host or not port.isdigit():
                raise SystemExit(
                    f"--upstream entries must be host:port, got {entry!r}"
                )
            upstreams.append((host, int(port)))

    router = RouterService(
        upstreams or None,
        processes=processes or None,
        replicas=args.replicas,
        health_interval=args.health_interval_ms / 1000.0,
        fail_after=args.fail_after,
        drain_timeout=args.drain_timeout,
        trace_sample=args.trace_sample,
        trace_log=args.trace_log,
    )

    def announce(bound):
        shards = ", ".join(
            f"{name}={state.address[0]}:{state.address[1]}"
            for name, state in sorted(router.shards.items())
        )
        print(
            f"repro-mss route: http://{bound[0]}:{bound[1]}  "
            f"shards={len(router.shards)}  [{shards}]",
            flush=True,
        )

    try:
        router.run(args.host, args.port, on_bound=announce)
    finally:
        # router.stop() already drained owned shards; this is the
        # belt-and-braces reap for startup failures mid-run().
        for shard in processes:
            if shard.alive:
                shard.terminate(args.drain_timeout)
    return 0


def _run_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.calibration import mss_null_distribution

    if not 2 <= args.k <= 26:
        raise SystemExit("-k must be between 2 and 26")
    alphabet = "abcdefghijklmnopqrstuvwxyz"[: args.k]
    model = BernoulliModel.uniform(alphabet)
    distribution = mss_null_distribution(
        model, args.n, trials=args.trials, seed=args.seed,
        backend=args.backend,
    )
    payload = {
        "n": args.n,
        "k": args.k,
        "trials": args.trials,
        "alpha": args.alpha,
        "critical_value": distribution.critical_value(args.alpha),
        "mean_x2max": distribution.mean,
        "two_ln_n": distribution.two_ln_n,
    }
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(
            f"n={args.n} k={args.k} trials={args.trials}: reject at "
            f"X2max > {payload['critical_value']:.3f} "
            f"(alpha={args.alpha}; mean={payload['mean_x2max']:.2f}, "
            f"2 ln n={payload['two_ln_n']:.2f})"
        )
    return 0


def _run_generate(args: argparse.Namespace) -> int:
    from repro.generators import (
        MarkovChain,
        generate_correlated_binary,
        generate_null_string,
        paper_markov_chain,
    )

    if not 2 <= args.k <= 26:
        raise SystemExit("-k must be between 2 and 26")
    alphabet = "abcdefghijklmnopqrstuvwxyz"[: args.k]
    if args.kind == "null":
        model = BernoulliModel.uniform(alphabet)
        text = generate_null_string(model, args.n, seed=args.seed)
    elif args.kind == "geometric":
        model = BernoulliModel.geometric(alphabet)
        text = generate_null_string(model, args.n, seed=args.seed)
    elif args.kind == "zipf":
        model = BernoulliModel.harmonic(alphabet)
        text = generate_null_string(model, args.n, seed=args.seed)
    elif args.kind == "markov":
        chain: MarkovChain = paper_markov_chain(args.k)
        codes = chain.generate(args.n, seed=args.seed)
        text = "".join(alphabet[c] for c in codes)
    else:  # correlated
        bits = generate_correlated_binary(args.n, args.same_prob, seed=args.seed)
        text = "".join("ab"[b] for b in bits)
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
