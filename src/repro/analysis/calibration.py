"""Monte-Carlo calibration of the MSS score.

The chi-square p-value attached to a :class:`SignificantSubstring` is
the significance of *that particular substring* had it been chosen in
advance.  The MSS is not chosen in advance -- it is the argmax over all
O(n²) substrings -- so judging a string's overall randomness by
``chi2_sf(X²max)`` massively overstates significance (the classic
look-elsewhere effect).  The paper's cryptology section works around
this by comparing X²max against its empirical ``~2 ln n`` growth law;
this module does the job properly:

1. simulate many null strings of the same length and model,
2. mine each for its X²max,
3. use the empirical distribution of those maxima as the null
   distribution of the observed X²max.

The resulting :class:`MSSNullDistribution` gives empirical p-values,
critical values, and the summary statistics that make Table 2-style
audits quantitative.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

from repro._validation import ensure_positive_int
from repro.core.model import BernoulliModel
from repro.generators.base import resolve_rng
from repro.kernels import get_backend

__all__ = [
    "MSSNullDistribution",
    "mss_null_distribution",
    "mss_p_value",
    "mss_critical_value",
]


@dataclass(frozen=True)
class MSSNullDistribution:
    """Empirical null distribution of X²max for (n, model).

    ``samples`` are the sorted X²max values of the simulated null
    strings.  With ``t`` trials, p-values are resolved no finer than
    ``1 / (t + 1)`` (the standard add-one Monte-Carlo estimate).
    """

    n: int
    alphabet_size: int
    samples: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 10:
            raise ValueError(
                f"need at least 10 Monte-Carlo samples, got {len(self.samples)}"
            )
        object.__setattr__(self, "samples", tuple(sorted(self.samples)))

    @property
    def trials(self) -> int:
        """Number of Monte-Carlo trials behind the distribution."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean simulated X²max (compare against ``2 ln n``)."""
        return sum(self.samples) / len(self.samples)

    @property
    def two_ln_n(self) -> float:
        """The paper's asymptotic benchmark for this length."""
        return 2.0 * math.log(self.n)

    def p_value(self, observed_x2max: float) -> float:
        """Empirical ``Pr[X²max >= observed]`` under the null.

        Add-one estimator: ``(#{samples >= observed} + 1) / (t + 1)`` --
        never returns exactly 0, as is proper for a Monte-Carlo p-value.
        """
        position = bisect.bisect_left(self.samples, observed_x2max)
        exceeding = len(self.samples) - position
        return (exceeding + 1) / (len(self.samples) + 1)

    def critical_value(self, alpha: float) -> float:
        """Empirical threshold z with ``Pr[X²max > z] ~ alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        index = min(
            len(self.samples) - 1,
            max(0, math.ceil((1.0 - alpha) * len(self.samples)) - 1),
        )
        return self.samples[index]

    def __repr__(self) -> str:
        return (
            f"MSSNullDistribution(n={self.n}, k={self.alphabet_size}, "
            f"trials={self.trials}, mean={self.mean:.2f}, "
            f"2ln n={self.two_ln_n:.2f})"
        )


def mss_null_distribution(
    model: BernoulliModel,
    n: int,
    trials: int = 100,
    seed: int | np.random.Generator | None = 0,
    *,
    backend=None,
) -> MSSNullDistribution:
    """Simulate the null distribution of X²max for strings of length ``n``.

    Cost: ``trials`` MSS scans of length-``n`` null strings, i.e.
    O(trials * k * n^1.5) expected -- the pruned scanner is what makes
    this calibration affordable at all.  The simulation runs through the
    selected kernel backend (:mod:`repro.kernels`): the default
    ``"numpy"`` backend scans all trials as one batched wavefront and is
    several times faster than the ``"python"`` reference, with
    bit-identical samples (both consume the RNG stream the same way).

    >>> model = BernoulliModel.uniform("ab")
    >>> dist = mss_null_distribution(model, 500, trials=20, seed=1)
    >>> dist.trials
    20
    >>> 5.0 < dist.mean < 25.0     # near 2 ln 500 ~ 12.4
    True
    """
    ensure_positive_int(n, "n")
    ensure_positive_int(trials, "trials")
    rng = resolve_rng(seed)
    kernel = get_backend(backend)
    samples = kernel.simulate_x2max(model, n, trials, rng)
    return MSSNullDistribution(
        n=n, alphabet_size=model.k, samples=tuple(samples)
    )


def mss_p_value(
    observed_x2max: float,
    model: BernoulliModel,
    n: int,
    trials: int = 100,
    seed: int | np.random.Generator | None = 0,
    *,
    backend=None,
) -> float:
    """One-call empirical p-value of an observed X²max.

    Convenience wrapper: simulates the null distribution and evaluates
    it at ``observed_x2max``.  Reuse :func:`mss_null_distribution` when
    scoring several strings of the same shape.

    >>> model = BernoulliModel.uniform("ab")
    >>> p_extreme = mss_p_value(80.0, model, 300, trials=30, seed=2)
    >>> p_extreme <= 1 / 30
    True
    """
    distribution = mss_null_distribution(
        model, n, trials=trials, seed=seed, backend=backend
    )
    return distribution.p_value(observed_x2max)


def mss_critical_value(
    alpha: float,
    model: BernoulliModel,
    n: int,
    trials: int = 100,
    seed: int | np.random.Generator | None = 0,
    *,
    backend=None,
) -> float:
    """Empirical rejection threshold for X²max at family level ``alpha``.

    This is the value to feed to the threshold variant (Problem 3) when
    the goal is "everything more significant than chance at level
    alpha, accounting for the search over all substrings".
    """
    distribution = mss_null_distribution(
        model, n, trials=trials, seed=seed, backend=backend
    )
    return distribution.critical_value(alpha)
