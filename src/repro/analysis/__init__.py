"""Analysis tools built on top of the miners.

Three gaps a practitioner hits immediately after running ``find_mss``
are closed here:

* **Calibration** (:mod:`repro.analysis.calibration`): the MSS score is
  the *maximum* of O(n²) dependent chi-square variables, so its p-value
  is NOT ``chi2_sf(X²max, k-1)`` -- that is the p-value of one fixed
  substring.  The paper's §7.4 uses the empirical law ``X²max ~ 2 ln n``
  as a benchmark; this module turns that idea into a proper Monte-Carlo
  null distribution with empirical p-values and critical values.
* **Skip profiling** (:mod:`repro.analysis.skipprofile`): Lemma 5 says
  skips are ``omega(sqrt(L))`` on null inputs.  The profiler records the
  actual skip-length distribution of a scan so the claim (and the §5.1
  speed-up on non-null inputs) can be inspected on any input.
* **Complexity model** (:mod:`repro.analysis.complexity`): closed-form
  iteration predictions for the trivial and pruned scans, for sizing
  runs before making them.
"""

from repro.analysis.calibration import (
    MSSNullDistribution,
    mss_critical_value,
    mss_null_distribution,
    mss_p_value,
)
from repro.analysis.complexity import (
    predicted_mss_iterations,
    predicted_threshold_iterations,
    trivial_iterations_closed_form,
)
from repro.analysis.skipprofile import SkipProfile, profile_skips

__all__ = [
    "MSSNullDistribution",
    "mss_null_distribution",
    "mss_p_value",
    "mss_critical_value",
    "SkipProfile",
    "profile_skips",
    "predicted_mss_iterations",
    "predicted_threshold_iterations",
    "trivial_iterations_closed_form",
]
