"""Skip-size profiling: watching Lemma 5 happen.

Lemma 5 proves that on null inputs, once ``X²max > ln l`` the skip at a
length-``l`` substring is at least ``(1/2) sqrt(l p ln l)`` with high
probability.  :func:`profile_skips` reruns the MSS scan with
instrumentation that records every (length, skip) pair, and
:class:`SkipProfile` summarises them -- mean skip by length decade,
comparison against the Lemma-5 floor, and the share of positions pruned.

The instrumented scan runs through the kernel registry
(:mod:`repro.kernels`, the ``scan_mss_skips`` kernel); it shares the
skip algebra with :mod:`repro.core.skip` and is tested to visit exactly
the same substrings as the production scanner.  Profiling is inherently
sequential (the records are the sequential trace), so every backend
returns the identical profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.counts import PrefixCountIndex
from repro.core.model import BernoulliModel
from repro.kernels import get_backend
from repro.stats.bounds import lemma5_expected_skip

__all__ = ["SkipProfile", "profile_skips"]


@dataclass
class SkipProfile:
    """Summary of the skip behaviour of one MSS scan."""

    n: int
    evaluated: int
    skipped: int
    #: (substring length, skip taken) for every evaluated substring.
    records: list[tuple[int, int]]
    x2max: float

    @property
    def fraction_skipped(self) -> float:
        """Share of all end positions pruned by the chain-cover bound."""
        total = self.evaluated + self.skipped
        return self.skipped / total if total else 0.0

    def mean_skip_by_decade(self) -> dict[tuple[int, int], float]:
        """Mean skip within power-of-ten length bands.

        Returns ``{(lo, hi): mean_skip}`` for bands [1,10), [10,100), ...
        """
        bands: dict[tuple[int, int], list[int]] = {}
        for length, skip in self.records:
            lo = 10 ** int(math.log10(max(1, length)))
            bands.setdefault((lo, lo * 10), []).append(skip)
        return {
            band: sum(values) / len(values) for band, values in sorted(bands.items())
        }

    def lemma5_satisfaction(self, p_t: float) -> float:
        """Fraction of long-substring skips meeting the Lemma-5 floor.

        Only substrings with ``length > e`` and ``X² <= X²max`` at scan
        time enter Lemma 5's regime; we approximate the condition with
        ``length >= 10`` and compare each skip against
        ``(1/2) sqrt(l p ln l)``.
        """
        eligible = [(length, skip) for length, skip in self.records if length >= 10]
        if not eligible:
            return 1.0
        meeting = sum(
            1
            for length, skip in eligible
            if skip >= lemma5_expected_skip(length, p_t)
        )
        return meeting / len(eligible)

    def __repr__(self) -> str:
        return (
            f"SkipProfile(n={self.n}, evaluated={self.evaluated}, "
            f"skipped={self.skipped}, pruned={100 * self.fraction_skipped:.1f}%)"
        )


def profile_skips(
    text: Iterable, model: BernoulliModel, *, backend=None
) -> SkipProfile:
    """Run an instrumented MSS scan and record every skip decision.

    The scan routes through the selected kernel backend's
    ``scan_mss_skips`` (:mod:`repro.kernels`); the profile is identical
    for every backend.

    >>> from repro.generators import generate_null_string
    >>> model = BernoulliModel.uniform("ab")
    >>> profile = profile_skips(generate_null_string(model, 400, seed=0), model)
    >>> profile.fraction_skipped > 0.5
    True
    """
    codes = model.encode(text)
    n = len(codes)
    if n == 0:
        raise ValueError("cannot profile an empty string")
    index = PrefixCountIndex(codes, model.k)
    records, x2max, evaluated, skipped = get_backend(backend).scan_mss_skips(
        index, model
    )
    return SkipProfile(
        n=n, evaluated=evaluated, skipped=skipped, records=records, x2max=x2max
    )
