"""Closed-form iteration predictions (for sizing runs before making them).

The paper's complexity statements, as usable formulas:

* trivial scan: exactly ``n (n + 1) / 2`` substrings;
* pruned MSS scan: ``c * n^1.5`` expected on null inputs (Lemma 6/7),
  with the constant calibrated once per (model, machine) from a small
  probe run;
* threshold scan: ``O(n sqrt(n / alpha0))`` beyond the knee (§6.2).

These are estimates of *iteration counts*; multiply by a measured
seconds-per-iteration to budget wall time.
"""

from __future__ import annotations

import math

from repro._validation import ensure_positive_int

__all__ = [
    "trivial_iterations_closed_form",
    "predicted_mss_iterations",
    "predicted_threshold_iterations",
    "calibrate_constant",
]

#: Default constant for the n^1.5 law, measured on uniform binary null
#: strings (Figure 1a reproduction: iterations / n^1.5 ~ 0.38-0.45).
DEFAULT_MSS_CONSTANT = 0.42


def trivial_iterations_closed_form(n: int, min_length: int = 1) -> int:
    """Exact substring count of the trivial scan.

    >>> trivial_iterations_closed_form(100)
    5050
    """
    ensure_positive_int(n, "n")
    ensure_positive_int(min_length, "min_length")
    if min_length > n:
        return 0
    m = n - min_length + 1
    return m * (m + 1) // 2


def predicted_mss_iterations(n: int, constant: float = DEFAULT_MSS_CONSTANT) -> float:
    """Expected pruned-scan iterations ``constant * n^1.5`` (null input).

    >>> 300_000 < predicted_mss_iterations(8000) < 400_000
    True
    """
    ensure_positive_int(n, "n")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant!r}")
    return constant * n ** 1.5


def predicted_threshold_iterations(
    n: int, alpha0: float, constant: float = 1.0
) -> float:
    """§6.2's beyond-the-knee estimate ``constant * n * sqrt(n / alpha0)``.

    Only meaningful for ``alpha0`` comfortably above the string's typical
    substring score (below the knee the scan is Theta(n²) by definition).

    >>> predicted_threshold_iterations(10_000, 25.0) < 10_000 ** 2 / 2
    True
    """
    ensure_positive_int(n, "n")
    if alpha0 <= 0:
        raise ValueError(f"alpha0 must be positive, got {alpha0!r}")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant!r}")
    return constant * n * math.sqrt(n / alpha0)


def calibrate_constant(probe_n: int, probe_iterations: int) -> float:
    """Back out the n^1.5 constant from one probe run.

    >>> round(calibrate_constant(10_000, 420_000), 3)
    0.42
    """
    ensure_positive_int(probe_n, "probe_n")
    ensure_positive_int(probe_iterations, "probe_iterations")
    return probe_iterations / probe_n ** 1.5
