"""Most significant sub-rectangle of a 2-D symbol grid (§8 future work).

The chi-square statistic only sees a region's count vector, so it extends
to any region shape; the paper singles out 2-D grids.  For rectangles the
natural scan fixes a row pair ``(r1, r2)`` and sweeps column ranges --
exactly the 1-D problem where "appending a character" becomes "appending
a column strip of ``r = r2 - r1`` symbols".

The chain-cover bound survives this generalisation verbatim: Theorem 1
bounds the X² of *any* extension of a prefix by at most ``l1`` symbols,
and appending ``x`` columns appends exactly ``r * x`` symbols.  So the
1-D skip machinery applies with ``l1 = r * x``; we solve the same
quadratic for the symbol-extension root ``u`` and skip
``floor(u / r)`` whole columns.  :func:`find_ms_rectangle` implements
that; :func:`find_ms_rectangle_trivial` is the O(R² C²) oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import BernoulliModel
from repro.stats.chi2dist import chi2_sf

__all__ = [
    "GridResult",
    "chi_square_rectangle",
    "find_ms_rectangle_trivial",
    "find_ms_rectangle",
]

_EPS = 1e-9


@dataclass(frozen=True)
class GridResult:
    """A scored sub-rectangle ``[top, bottom) x [left, right)``."""

    top: int
    bottom: int
    left: int
    right: int
    chi_square: float
    alphabet_size: int
    cells_evaluated: int = 0

    @property
    def p_value(self) -> float:
        """Asymptotic chi-square(k-1) p-value of the rectangle's score."""
        return chi2_sf(self.chi_square, self.alphabet_size - 1)

    @property
    def area(self) -> int:
        """Number of grid cells covered."""
        return (self.bottom - self.top) * (self.right - self.left)


def _encode_grid(grid: Sequence[Sequence], model: BernoulliModel) -> np.ndarray:
    rows = len(grid)
    if rows == 0:
        raise ValueError("grid has no rows")
    columns = len(grid[0])
    if columns == 0:
        raise ValueError("grid has no columns")
    encoded = np.empty((rows, columns), dtype=np.int64)
    for r, row in enumerate(grid):
        if len(row) != columns:
            raise ValueError(
                f"ragged grid: row 0 has {columns} cells, row {r} has {len(row)}"
            )
        encoded[r] = model.encode(row)
    return encoded


def _prefix_counts_2d(encoded: np.ndarray, k: int) -> np.ndarray:
    """``(k, R + 1, C + 1)`` inclusion-exclusion prefix counts."""
    rows, columns = encoded.shape
    prefix = np.zeros((k, rows + 1, columns + 1), dtype=np.int64)
    for j in range(k):
        indicator = (encoded == j).astype(np.int64)
        prefix[j, 1:, 1:] = indicator.cumsum(axis=0).cumsum(axis=1)
    return prefix


def chi_square_rectangle(
    grid: Sequence[Sequence], model: BernoulliModel,
    top: int, bottom: int, left: int, right: int,
) -> float:
    """X² of the rectangle ``grid[top:bottom][left:right]``.

    >>> model = BernoulliModel.uniform("ab")
    >>> chi_square_rectangle(["ab", "ab"], model, 0, 2, 0, 1)  # all-'a' column
    2.0
    """
    encoded = _encode_grid(grid, model)
    rows, columns = encoded.shape
    if not (0 <= top < bottom <= rows and 0 <= left < right <= columns):
        raise IndexError(
            f"rectangle [{top}:{bottom}) x [{left}:{right}) invalid for a "
            f"{rows} x {columns} grid"
        )
    region = encoded[top:bottom, left:right]
    length = region.size
    total = 0.0
    for j, p in enumerate(model.probabilities):
        y = int((region == j).sum())
        total += y * y / p
    return total / length - length


def find_ms_rectangle_trivial(
    grid: Sequence[Sequence], model: BernoulliModel
) -> GridResult:
    """Exhaustive O(R² C²) sub-rectangle scan (the test oracle)."""
    encoded = _encode_grid(grid, model)
    rows, columns = encoded.shape
    prefix = _prefix_counts_2d(encoded, model.k)
    inv_p = [1.0 / p for p in model.probabilities]
    char_range = range(model.k)
    best = -1.0
    best_rect = (0, 1, 0, 1)
    evaluated = 0
    for top in range(rows):
        for bottom in range(top + 1, rows + 1):
            height = bottom - top
            for left in range(columns):
                for right in range(left + 1, columns + 1):
                    length = height * (right - left)
                    total = 0.0
                    for j in char_range:
                        y = int(
                            prefix[j, bottom, right]
                            - prefix[j, top, right]
                            - prefix[j, bottom, left]
                            + prefix[j, top, left]
                        )
                        total += y * y * inv_p[j]
                    x2 = total / length - length
                    evaluated += 1
                    if x2 > best:
                        best = x2
                        best_rect = (top, bottom, left, right)
    top, bottom, left, right = best_rect
    return GridResult(
        top=top, bottom=bottom, left=left, right=right,
        chi_square=best, alphabet_size=model.k, cells_evaluated=evaluated,
    )


def find_ms_rectangle(
    grid: Sequence[Sequence], model: BernoulliModel
) -> GridResult:
    """Chain-cover-pruned sub-rectangle scan.

    For each row pair, sweeps column ranges with the 1-D skip machinery
    (extension unit = one column strip of ``height`` symbols).  Exact --
    property-tested against :func:`find_ms_rectangle_trivial`.

    >>> model = BernoulliModel.uniform("ab")
    >>> grid = ["abab", "baaa", "baab", "abab"]
    >>> result = find_ms_rectangle(grid, model)
    >>> result.chi_square >= 3.0
    True
    """
    encoded = _encode_grid(grid, model)
    rows, columns = encoded.shape
    prefix = _prefix_counts_2d(encoded, model.k)
    probabilities = model.probabilities
    inv_p = [1.0 / p for p in probabilities]
    char_range = range(model.k)
    sqrt = math.sqrt
    best = -1.0
    best_rect = (0, 1, 0, 1)
    evaluated = 0
    counts = [0] * model.k
    for top in range(rows):
        for bottom in range(top + 1, rows + 1):
            height = bottom - top
            row_hi = prefix[:, bottom, :]
            row_lo = prefix[:, top, :]
            strip = (row_hi - row_lo)  # (k, C + 1) cumulative column counts
            for left in range(columns):
                right = left + 1
                while right <= columns:
                    length = height * (right - left)
                    total = 0.0
                    for j in char_range:
                        y = int(strip[j, right] - strip[j, left])
                        counts[j] = y
                        total += y * y * inv_p[j]
                    x2 = total / length - length
                    evaluated += 1
                    if x2 > best:
                        best = x2
                        best_rect = (top, bottom, left, right)
                    # Chain-cover skip in symbol units, then whole columns.
                    c_common = (x2 - best) * length
                    root = math.inf
                    for j in char_range:
                        p = probabilities[j]
                        a = 1.0 - p
                        b = 2.0 * counts[j] - 2.0 * length * p - p * best
                        c = c_common * p
                        r = (-b + sqrt(b * b - 4.0 * a * c)) / (2.0 * a)
                        if r < root:
                            root = r
                            if root < height:
                                break
                    column_skip = int(root / height - _EPS) if root >= height else 0
                    right += column_skip + 1
    top, bottom, left, right = best_rect
    return GridResult(
        top=top, bottom=bottom, left=left, right=right,
        chi_square=best, alphabet_size=model.k, cells_evaluated=evaluated,
    )
