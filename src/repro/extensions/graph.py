"""Significant connected subgraphs of labelled graphs (§8 future work).

The paper's last extension target: "general graphs".  Nodes carry labels
from a multinomial alphabet; the X² of a node set is the chi-square of
its label counts, and the object of interest is a *connected* subgraph
whose label distribution deviates most from the null.

Exact search is NP-hard (connected maximum-weight subgraph reduces to
it), so we provide the standard greedy expansion heuristic with restarts:
grow a region from a seed node, at each step absorbing the neighbouring
node that maximises the region's X², and keep the best region seen across
the growth path and across seeds.  With ``seeds="all"`` every node seeds
one growth, which is exact on paths/trees small enough for the tests to
cross-check by brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.core.chisquare import chi_square_from_counts
from repro.core.model import BernoulliModel
from repro.stats.chi2dist import chi2_sf

__all__ = ["GraphScanResult", "find_significant_subgraph"]


@dataclass(frozen=True)
class GraphScanResult:
    """A scored connected node set."""

    nodes: frozenset
    chi_square: float
    counts: tuple[int, ...]
    alphabet_size: int

    @property
    def p_value(self) -> float:
        """Asymptotic chi-square(k-1) p-value of the region's score."""
        return chi2_sf(self.chi_square, self.alphabet_size - 1)

    @property
    def size(self) -> int:
        """Number of nodes in the region."""
        return len(self.nodes)


def _region_score(
    counts: list[int], probabilities: tuple[float, ...]
) -> float:
    return chi_square_from_counts(counts, probabilities)


def find_significant_subgraph(
    graph: nx.Graph,
    labels: Mapping[Hashable, Hashable],
    model: BernoulliModel,
    *,
    seeds: Iterable[Hashable] | str = "all",
    max_size: int | None = None,
) -> GraphScanResult:
    """Greedy best connected subgraph under the label chi-square.

    Parameters
    ----------
    graph:
        An undirected networkx graph.
    labels:
        Node -> alphabet symbol.
    model:
        The null :class:`~repro.core.model.BernoulliModel` over labels.
    seeds:
        ``"all"`` (default) seeds a greedy growth at every node;
        otherwise an iterable of seed nodes.
    max_size:
        Optional cap on region size.

    Examples
    --------
    >>> import networkx as nx
    >>> graph = nx.path_graph(9)
    >>> labels = {i: ("b" if 3 <= i <= 5 else "a") for i in graph}
    >>> model = BernoulliModel("ab", [0.8, 0.2])
    >>> result = find_significant_subgraph(graph, labels, model)
    >>> sorted(result.nodes)
    [3, 4, 5]
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    missing = [node for node in graph.nodes if node not in labels]
    if missing:
        raise ValueError(f"nodes missing labels: {missing[:5]!r}")
    codes = {node: model.code_of(labels[node]) for node in graph.nodes}
    seed_nodes = list(graph.nodes) if seeds == "all" else list(seeds)
    if not seed_nodes:
        raise ValueError("no seed nodes given")
    cap = graph.number_of_nodes() if max_size is None else max_size
    if cap < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size!r}")

    probabilities = model.probabilities
    best: GraphScanResult | None = None
    for seed in seed_nodes:
        if seed not in graph:
            raise ValueError(f"seed {seed!r} is not a graph node")
        region = {seed}
        counts = [0] * model.k
        counts[codes[seed]] += 1
        frontier = set(graph.neighbors(seed))
        current = _region_score(counts, probabilities)
        if best is None or current > best.chi_square:
            best = GraphScanResult(
                nodes=frozenset(region),
                chi_square=current,
                counts=tuple(counts),
                alphabet_size=model.k,
            )
        while frontier and len(region) < cap:
            candidate_best = None
            candidate_score = -1.0
            for node in frontier:
                counts[codes[node]] += 1
                score = _region_score(counts, probabilities)
                counts[codes[node]] -= 1
                if score > candidate_score:
                    candidate_score = score
                    candidate_best = node
            region.add(candidate_best)
            counts[codes[candidate_best]] += 1
            frontier.discard(candidate_best)
            frontier.update(
                neighbor
                for neighbor in graph.neighbors(candidate_best)
                if neighbor not in region
            )
            if candidate_score > best.chi_square:
                best = GraphScanResult(
                    nodes=frozenset(region),
                    chi_square=candidate_score,
                    counts=tuple(counts),
                    alphabet_size=model.k,
                )
    assert best is not None
    return best
