"""Windows of significant *correlation* between two sequences (§8).

The paper's final future-work idea: "financial time series analysis of
two securities that might not be very correlated in general, but might
point to significant correlations during certain specific events such
as recession".

The reduction to the core miner is exact.  Zip the two aligned
sequences into one sequence of *pair symbols* ``(a_i, b_j)``; under the
null hypothesis that the series are independent with their observed
marginals, the pair probabilities are the products ``p_i * q_j`` -- a
perfectly ordinary :class:`~repro.core.model.BernoulliModel` over the
product alphabet.  A window where the pair mix deviates from that model
is exactly a window of dependence (or of marginal shift), and Pearson's
X² over the pair counts is the classic contingency test statistic.  So
``find_mss`` on the pair encoding *is* the most-correlated-window miner,
inheriting the O(k·n^1.5) pruning untouched.

Note the two-sided nature: a window can be flagged because the series
*move together*, move *oppositely*, or individually drift.  The
:func:`window_association` helper decomposes a window's score into the
marginal and interaction parts so callers can tell which.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.chisquare import chi_square_from_counts
from repro.core.model import BernoulliModel
from repro.core.mss import find_mss
from repro.core.results import MSSResult

__all__ = [
    "pair_model",
    "pair_encode",
    "find_most_dependent_window",
    "window_association",
    "AssociationBreakdown",
]


def pair_model(
    model_a: BernoulliModel, model_b: BernoulliModel
) -> BernoulliModel:
    """The independence null over the product alphabet.

    Symbols are ``(a, b)`` tuples; probabilities are the products of the
    marginals.

    >>> a = BernoulliModel.uniform("ud")
    >>> b = BernoulliModel("UD", [0.6, 0.4])
    >>> joint = pair_model(a, b)
    >>> joint.k
    4
    >>> joint.probability_of(("u", "D"))
    0.2
    """
    symbols = []
    probabilities = []
    for sym_a, p_a in zip(model_a.alphabet, model_a.probabilities):
        for sym_b, p_b in zip(model_b.alphabet, model_b.probabilities):
            symbols.append((sym_a, sym_b))
            probabilities.append(p_a * p_b)
    return BernoulliModel(tuple(symbols), probabilities)


def pair_encode(
    sequence_a: Sequence[Hashable], sequence_b: Sequence[Hashable]
) -> list[tuple[Hashable, Hashable]]:
    """Zip two aligned sequences into pair symbols.

    >>> pair_encode("ud", "DU")
    [('u', 'D'), ('d', 'U')]
    """
    if len(sequence_a) != len(sequence_b):
        raise ValueError(
            f"sequences must be aligned: {len(sequence_a)} vs {len(sequence_b)}"
        )
    if len(sequence_a) == 0:
        raise ValueError("sequences are empty")
    return list(zip(sequence_a, sequence_b))


def find_most_dependent_window(
    sequence_a: Sequence[Hashable],
    sequence_b: Sequence[Hashable],
    *,
    model_a: BernoulliModel | None = None,
    model_b: BernoulliModel | None = None,
) -> MSSResult:
    """The window where the two sequences deviate most from independence.

    Marginal models default to the maximum-likelihood estimates from the
    full sequences (as the paper estimates its null probabilities).  The
    returned result is a plain :class:`~repro.core.results.MSSResult`
    over the pair sequence; its ``best.counts`` order follows the
    product alphabet of :func:`pair_model` (row-major in A's symbols).

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> a = "".join(rng.choice(list("ud"), 400))
    >>> b = "".join(rng.choice(list("ud"), 200)) + a[200:]  # coupled tail
    >>> result = find_most_dependent_window(a, b)
    >>> result.best.start >= 180
    True
    """
    if model_a is None:
        model_a = BernoulliModel.from_string(sequence_a)
    if model_b is None:
        model_b = BernoulliModel.from_string(sequence_b)
    pairs = pair_encode(sequence_a, sequence_b)
    joint_null = pair_model(model_a, model_b)
    return find_mss(pairs, joint_null)


@dataclass(frozen=True)
class AssociationBreakdown:
    """Decomposition of a window's pair-score into its sources.

    ``total`` is the X² against the independence null; ``marginal_a`` /
    ``marginal_b`` are the X² of each series' own counts against its
    marginal model (drift of either series alone); ``interaction`` is
    the X² of the pair counts against the *window's own* product
    marginals -- pure dependence, the classic contingency statistic.
    """

    total: float
    marginal_a: float
    marginal_b: float
    interaction: float


def window_association(
    pairs: Sequence[tuple[Hashable, Hashable]],
    model_a: BernoulliModel,
    model_b: BernoulliModel,
) -> AssociationBreakdown:
    """Decompose a window of pair symbols into marginal and interaction parts.

    >>> a = BernoulliModel.uniform("ud")
    >>> b = BernoulliModel.uniform("ud")
    >>> window = [("u", "u"), ("d", "d")] * 10   # perfectly coupled
    >>> breakdown = window_association(window, a, b)
    >>> breakdown.interaction == breakdown.total
    True
    >>> round(breakdown.marginal_a, 9)
    0.0
    """
    if len(pairs) == 0:
        raise ValueError("window is empty")
    counts_a = model_a.count_vector([a for a, _ in pairs])
    counts_b = model_b.count_vector([b for _, b in pairs])
    joint_null = pair_model(model_a, model_b)
    pair_counts = joint_null.count_vector(list(pairs))

    total = chi_square_from_counts(pair_counts, joint_null.probabilities)
    marginal_a = chi_square_from_counts(counts_a, model_a.probabilities)
    marginal_b = chi_square_from_counts(counts_b, model_b.probabilities)

    # Interaction: pair counts against the window's OWN product marginals.
    length = len(pairs)
    interaction = 0.0
    index = 0
    for count_a in counts_a:
        for count_b in counts_b:
            expected = count_a * count_b / length
            observed = pair_counts[index]
            if expected > 0:
                deviation = observed - expected
                interaction += deviation * deviation / expected
            index += 1
    return AssociationBreakdown(
        total=total,
        marginal_a=marginal_a,
        marginal_b=marginal_b,
        interaction=interaction,
    )
