"""Fixed-window significance scan (the related-work setting of [3, 15]).

The episode-detection literature the paper contrasts itself with
constrains patterns to a window of fixed size ``w``.  Restricted to
*contiguous* patterns, that becomes: score every length-``w`` window by
X² and report the best ones.  This module implements that scan -- O(k n)
with sliding counts -- both as a usable tool and as the comparison point
the library's examples use to show what the unconstrained substring
problem adds (the MSS's length is data-driven; a fixed ``w`` must be
guessed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.chisquare import chi_square_from_counts
from repro.core.model import BernoulliModel
from repro.core.postprocess import select_non_overlapping
from repro.core.results import ScanStats, SignificantSubstring

__all__ = ["WindowScore", "scan_windows", "top_windows"]


@dataclass(frozen=True)
class WindowScore:
    """X² of the window ``[start, start + w)``."""

    start: int
    chi_square: float


def scan_windows(
    text: Sequence, model: BernoulliModel, w: int
) -> tuple[list[WindowScore], ScanStats]:
    """Score every length-``w`` window; returns scores and scan stats.

    >>> model = BernoulliModel.uniform("ab")
    >>> scores, stats = scan_windows("ababaaaaab", model, 4)
    >>> max(s.chi_square for s in scores)
    4.0
    >>> stats.substrings_evaluated
    7
    """
    codes = model.encode(text).tolist()
    n = len(codes)
    if not 1 <= w <= n:
        raise ValueError(f"window size must be in [1, {n}], got {w!r}")
    probabilities = model.probabilities
    counts = [0] * model.k
    for code in codes[:w]:
        counts[code] += 1
    started = time.perf_counter()
    scores = [WindowScore(0, chi_square_from_counts(counts, probabilities))]
    for start in range(1, n - w + 1):
        counts[codes[start - 1]] -= 1
        counts[codes[start + w - 1]] += 1
        scores.append(
            WindowScore(start, chi_square_from_counts(counts, probabilities))
        )
    elapsed = time.perf_counter() - started
    stats = ScanStats(
        n=n,
        substrings_evaluated=len(scores),
        positions_skipped=0,
        start_positions=len(scores),
        elapsed_seconds=elapsed,
    )
    return scores, stats


def top_windows(
    text: Sequence,
    model: BernoulliModel,
    w: int,
    t: int,
    *,
    allow_overlap: bool = False,
) -> list[SignificantSubstring]:
    """The ``t`` highest-scoring windows, optionally non-overlapping.

    >>> model = BernoulliModel.uniform("ab")
    >>> best = top_windows("ab" * 8 + "aaaa" + "ab" * 8, model, 4, 1)
    >>> best[0].counts
    (4, 0)
    """
    if t < 1:
        raise ValueError(f"t must be >= 1, got {t!r}")
    scores, _ = scan_windows(text, model, w)
    substrings = [
        SignificantSubstring(
            start=score.start,
            end=score.start + w,
            chi_square=score.chi_square,
            counts=model.count_vector(text[score.start : score.start + w]),
            alphabet_size=model.k,
        )
        for score in scores
    ]
    if allow_overlap:
        substrings.sort(key=lambda s: (-s.chi_square, s.start))
        return substrings[:t]
    return select_non_overlapping(substrings, limit=t)
