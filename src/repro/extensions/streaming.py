"""Streaming MSS: mining an unbounded symbol stream online.

The paper's motivating applications include automated monitoring,
intrusion detection and telecom traffic -- settings where the string
never ends and the miner must run *online*.  This module provides the
standard chunk-with-overlap scheme on top of the batch scanner:

* symbols are buffered; every time the buffer reaches
  ``chunk + overlap`` symbols the buffer is mined with the O(k m^1.5)
  batch scanner, the incumbent best is updated, and the oldest
  ``chunk`` symbols are dropped (the trailing ``overlap`` symbols stay
  to catch substrings spanning the cut);
* any substring of length **<= overlap** is fully contained in at least
  one mined buffer, so the reported best is *exact over all substrings
  up to that length* -- the guarantee, its proof being one sentence:
  a substring of length L <= overlap that crosses a cut lies entirely
  within the retained overlap plus the next chunk.

Longer substrings may be found (chunks often contain them) but are not
guaranteed.  Choose ``overlap`` as the longest anomaly you need
certainty about -- the same role the window plays in the related-work
episode scanners, but without binding the *detected* length.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro._validation import ensure_positive_int
from repro.core.model import BernoulliModel
from repro.core.mss import find_mss
from repro.core.results import SignificantSubstring

__all__ = ["StreamingMSS"]


class StreamingMSS:
    """Online most-significant-substring tracker.

    Parameters
    ----------
    model:
        The null model for the stream.
    chunk:
        Symbols dropped per flush; larger chunks amortise scan cost.
    overlap:
        Symbols retained across flushes.  Substrings up to this length
        are tracked exactly.
    backend:
        Kernel backend for the flush scans (see :mod:`repro.kernels`);
        ``None`` defers to ``REPRO_BACKEND`` / the default.

    Examples
    --------
    >>> model = BernoulliModel.uniform("ab")
    >>> miner = StreamingMSS(model, chunk=500, overlap=200)
    >>> miner.feed("ab" * 400)           # unremarkable traffic
    >>> miner.feed("a" * 60)             # a burst
    >>> miner.feed("ba" * 400)
    >>> best = miner.finish()
    >>> 795 <= best.start and best.end <= 865   # the burst, global offsets
    True
    """

    def __init__(self, model: BernoulliModel, chunk: int = 4096,
                 overlap: int = 512, *, backend=None) -> None:
        ensure_positive_int(chunk, "chunk")
        ensure_positive_int(overlap, "overlap")
        if overlap >= chunk:
            raise ValueError(
                f"overlap ({overlap}) must be smaller than chunk ({chunk})"
            )
        self._model = model
        self._chunk = chunk
        self._overlap = overlap
        self._backend = backend
        self._buffer: list[Hashable] = []
        self._buffer_offset = 0  # global index of buffer[0]
        self._symbols_seen = 0
        self._flushes = 0
        self._best: SignificantSubstring | None = None

    @property
    def symbols_seen(self) -> int:
        """Total symbols consumed so far."""
        return self._symbols_seen

    @property
    def flushes(self) -> int:
        """Number of batch scans performed so far."""
        return self._flushes

    @property
    def exact_length_limit(self) -> int:
        """Substring lengths tracked exactly (the overlap)."""
        return self._overlap

    @property
    def current_best(self) -> SignificantSubstring | None:
        """Best substring confirmed so far (None before any symbol).

        Note: symbols still in the buffer are only reflected after the
        next flush or :meth:`finish`.
        """
        return self._best

    def feed(self, symbols: Iterable[Hashable]) -> None:
        """Consume symbols, flushing complete chunks as they fill."""
        for symbol in symbols:
            self._model.code_of(symbol)  # validate early, with context
            self._buffer.append(symbol)
            self._symbols_seen += 1
            if len(self._buffer) >= self._chunk + self._overlap:
                self._flush()

    def _flush(self) -> None:
        self._scan_buffer()
        drop = len(self._buffer) - self._overlap
        self._buffer = self._buffer[drop:]
        self._buffer_offset += drop

    def _scan_buffer(self) -> None:
        if not self._buffer:
            return
        result = find_mss(self._buffer, self._model, backend=self._backend)
        self._flushes += 1
        candidate = result.best
        if self._best is None or candidate.chi_square > self._best.chi_square:
            self._best = SignificantSubstring(
                start=candidate.start + self._buffer_offset,
                end=candidate.end + self._buffer_offset,
                chi_square=candidate.chi_square,
                counts=candidate.counts,
                alphabet_size=candidate.alphabet_size,
            )

    def finish(self) -> SignificantSubstring:
        """Scan the residual buffer and return the overall best.

        The miner remains usable afterwards (more symbols may be fed);
        ``finish`` may be called repeatedly.
        """
        if self._symbols_seen == 0:
            raise ValueError("no symbols were fed")
        self._scan_buffer()
        assert self._best is not None
        return self._best
