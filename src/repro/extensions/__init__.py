"""Extensions: the paper's §8 future-work directions, implemented.

* :mod:`repro.extensions.grid2d` -- "the single dimensional problem ...
  can be extended to two-dimensional grid networks": most significant
  sub-rectangle mining, trivial and chain-cover-pruned (the paper's
  Theorem 1 applies verbatim to column-strip extensions).
* :mod:`repro.extensions.graph` -- "... as well as general graphs":
  greedy significant-connected-subgraph search on labelled graphs.
* :mod:`repro.extensions.markov_null` -- "the analysis can be further
  extended to strings generated from Markov models": a transition-count
  chi-square against a first-order Markov null.
* :mod:`repro.extensions.windows` -- the fixed-window scan of the
  related work ([3, 15] flavour), for comparison with the unconstrained
  substring problem.
* :mod:`repro.extensions.streaming` -- online MSS over unbounded
  streams (chunk-with-overlap, exact up to the overlap length), for the
  monitoring/intrusion/telecom applications of §1.
* :mod:`repro.extensions.correlation` -- windows of significant
  dependence between two aligned sequences (the paper's "two
  securities" future-work idea), by exact reduction to the core miner
  over pair symbols.
"""

from repro.extensions.graph import GraphScanResult, find_significant_subgraph
from repro.extensions.grid2d import (
    GridResult,
    chi_square_rectangle,
    find_ms_rectangle,
    find_ms_rectangle_trivial,
)
from repro.extensions.markov_null import (
    MarkovNullModel,
    find_mss_markov,
    transition_chi_square,
)
from repro.extensions.correlation import (
    AssociationBreakdown,
    find_most_dependent_window,
    pair_encode,
    pair_model,
    window_association,
)
from repro.extensions.streaming import StreamingMSS
from repro.extensions.windows import WindowScore, scan_windows, top_windows

__all__ = [
    "StreamingMSS",
    "pair_model",
    "pair_encode",
    "find_most_dependent_window",
    "window_association",
    "AssociationBreakdown",
    "GridResult",
    "chi_square_rectangle",
    "find_ms_rectangle",
    "find_ms_rectangle_trivial",
    "MarkovNullModel",
    "transition_chi_square",
    "find_mss_markov",
    "WindowScore",
    "scan_windows",
    "top_windows",
    "GraphScanResult",
    "find_significant_subgraph",
]
