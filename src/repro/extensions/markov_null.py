"""Chi-square against a first-order Markov null (§8 future work).

The paper's closing section proposes extending the analysis "to strings
generated from Markov models, the most basic of which being the case when
there is a correlation between adjacent characters".  This module
implements that basic case: the null hypothesis is a first-order Markov
chain, the statistic is Pearson's X² over *transition* counts,

``X² = sum_{i,j} (N_ij - M_i Q_ij)² / (M_i Q_ij)``

where ``N_ij`` counts transitions ``a_i -> a_j`` inside the substring,
``M_i = sum_j N_ij`` counts transitions leaving ``a_i``, and ``Q`` is the
null transition matrix.  Conditioned on the origins ``M``, the statistic
is asymptotically chi-square with ``k (k - 1)`` degrees of freedom.

Transition prefix counts make any substring's statistic O(k²); the MSS
search here is the trivial O(n² k²) scan -- deriving a chain-cover-style
pruning bound under a Markov null is genuinely open (the skip lemmas rely
on exchangeability of appended symbols), which is exactly why the paper
leaves it as future work.  We keep the oracle so the extension is usable
and testable today.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.model import BernoulliModel
from repro.core.results import ScanStats
from repro.stats.chi2dist import chi2_sf

__all__ = ["MarkovNullModel", "transition_chi_square", "find_mss_markov", "MarkovMSSResult"]


class MarkovNullModel:
    """A first-order Markov null hypothesis over a character alphabet.

    >>> null = MarkovNullModel("ab", [[0.9, 0.1], [0.1, 0.9]])
    >>> null.k
    2
    >>> round(float(null.transition[0, 1]), 3)
    0.1
    """

    def __init__(self, alphabet: Sequence, transition: Sequence[Sequence[float]]) -> None:
        symbols = tuple(alphabet)
        if len(symbols) < 2:
            raise ValueError(f"alphabet must have >= 2 symbols, got {len(symbols)}")
        if len(symbols) != len(set(symbols)):
            raise ValueError(f"alphabet contains duplicates: {symbols!r}")
        matrix = np.asarray(transition, dtype=np.float64)
        if matrix.shape != (len(symbols), len(symbols)):
            raise ValueError(
                f"transition must be {len(symbols)} x {len(symbols)}, got "
                f"{matrix.shape}"
            )
        if (matrix <= 0).any():
            raise ValueError(
                "transition probabilities must be strictly positive "
                "(the statistic divides by them)"
            )
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition rows must sum to 1")
        self._alphabet = symbols
        self._index = {s: i for i, s in enumerate(symbols)}
        self._transition = matrix

    @property
    def alphabet(self) -> tuple:
        """The symbols in code order."""
        return self._alphabet

    @property
    def transition(self) -> np.ndarray:
        """The null transition matrix ``Q``."""
        return self._transition

    @property
    def k(self) -> int:
        """Alphabet size."""
        return len(self._alphabet)

    @property
    def dof(self) -> int:
        """Degrees of freedom of the transition statistic: ``k (k - 1)``."""
        return self.k * (self.k - 1)

    def encode(self, text: Iterable) -> list[int]:
        """Symbols to integer codes."""
        try:
            return [self._index[s] for s in text]
        except KeyError as exc:
            raise KeyError(
                f"symbol {exc.args[0]!r} is not in the alphabet "
                f"{self._alphabet!r}"
            ) from None

    @classmethod
    def from_bernoulli(cls, model: BernoulliModel) -> "MarkovNullModel":
        """Degenerate Markov null equal to a memoryless model.

        Each row is the marginal distribution -- useful for checking that
        the transition statistic agrees with intuition on i.i.d. nulls.
        """
        row = list(model.probabilities)
        return cls(model.alphabet, [row[:] for _ in range(model.k)])


def transition_chi_square(text: Sequence, null: MarkovNullModel) -> float:
    """Transition-count X² of a whole string against ``null``.

    >>> null = MarkovNullModel("ab", [[0.5, 0.5], [0.5, 0.5]])
    >>> transition_chi_square("abababab", null) > 0
    True
    >>> transition_chi_square("ab", null)  # single transition, as expected
    1.0
    """
    codes = null.encode(text)
    if len(codes) < 2:
        raise ValueError("need at least 2 characters (1 transition)")
    k = null.k
    counts = np.zeros((k, k), dtype=np.int64)
    for a, b in zip(codes, codes[1:]):
        counts[a, b] += 1
    return _x2_from_transitions(counts, null.transition)


def _x2_from_transitions(counts: np.ndarray, q: np.ndarray) -> float:
    origins = counts.sum(axis=1)
    total = 0.0
    for i in range(q.shape[0]):
        if origins[i] == 0:
            continue
        expected = origins[i] * q[i]
        deviation = counts[i] - expected
        total += float((deviation * deviation / expected).sum())
    return total


@dataclass
class MarkovMSSResult:
    """Best substring under the Markov-null transition statistic."""

    start: int
    end: int
    chi_square: float
    dof: int
    stats: ScanStats

    @property
    def p_value(self) -> float:
        """Asymptotic chi-square(k(k-1)) p-value."""
        return chi2_sf(self.chi_square, self.dof)


def find_mss_markov(
    text: Sequence, null: MarkovNullModel, *, min_transitions: int = 2
) -> MarkovMSSResult:
    """Most significant substring under a Markov null (trivial scan).

    ``min_transitions`` floors the substring size (very short substrings
    trivially max out the statistic; 2 transitions = 3 characters is the
    smallest non-degenerate window).

    >>> null = MarkovNullModel("ab", [[0.5, 0.5], [0.5, 0.5]])
    >>> text = "abab" + "aaaaaaa" + "baba"   # a sticky run violates the null
    >>> result = find_mss_markov(text, null)
    >>> "aaaaaaa" in text[result.start:result.end]
    True
    """
    if min_transitions < 1:
        raise ValueError(f"min_transitions must be >= 1, got {min_transitions!r}")
    codes = null.encode(text)
    n = len(codes)
    if n < min_transitions + 1:
        raise ValueError(
            f"string of length {n} has fewer than {min_transitions} transitions"
        )
    k = null.k
    q = null.transition
    # Prefix transition counts: trans[i][j][t] = # of (a_i -> a_j) among
    # the first t transitions.
    transitions = np.zeros((n - 1,), dtype=np.int64)
    for t, (a, b) in enumerate(zip(codes, codes[1:])):
        transitions[t] = a * k + b
    prefix = np.zeros((k * k, n), dtype=np.int64)
    for cell in range(k * k):
        prefix[cell, 1:] = np.cumsum(transitions == cell)

    best = -1.0
    best_range = (0, min_transitions + 1)
    evaluated = 0
    started = time.perf_counter()
    for start in range(n - min_transitions):
        for end in range(start + min_transitions + 1, n + 1):
            window = prefix[:, end - 1] - prefix[:, start]
            counts = window.reshape(k, k)
            x2 = _x2_from_transitions(counts, q)
            evaluated += 1
            if x2 > best:
                best = x2
                best_range = (start, end)
    elapsed = time.perf_counter() - started
    stats = ScanStats(
        n=n,
        substrings_evaluated=evaluated,
        positions_skipped=0,
        start_positions=n - min_transitions,
        elapsed_seconds=elapsed,
    )
    return MarkovMSSResult(
        start=best_range[0],
        end=best_range[1],
        chi_square=best,
        dof=null.dof,
        stats=stats,
    )
